package server

// cluster_test.go: end-to-end tests of distributed serving — a coordinator
// Server fanning /query execution out to worker Servers over HTTP — plus
// the worker /shard/query endpoint contract, the panic-recovery middleware,
// the Config.QueryTimeout hard ceiling, and the WAL-failure /healthz
// degradation. Workers and coordinator are real Servers on httptest
// listeners; faults come from cluster.FaultPlan or from killing a worker's
// listener outright.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/store"
)

// newClusterFixture boots nWorkers sharded worker Servers over st and a
// coordinator Server wired to them through a cluster.Coordinator.
func newClusterFixture(t *testing.T, st *store.Store, nWorkers, shards int, tweak func(*cluster.Config)) (*Server, *httptest.Server, []*httptest.Server, *cluster.Coordinator) {
	t.Helper()
	var urls []string
	var workers []*httptest.Server
	for i := 0; i < nWorkers; i++ {
		_, wts := newTestServer(t, st, Config{Shards: shards, MaxRows: -1})
		urls = append(urls, wts.URL)
		workers = append(workers, wts)
	}
	ccfg := cluster.Config{
		Workers:       urls,
		Shards:        shards,
		Replicas:      2,
		DisableProbes: true,
		Policy: cluster.Policy{
			MaxAttempts:    3,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     2 * time.Millisecond,
			AttemptTimeout: 10 * time.Second,
			HedgeAfter:     -1,
		},
	}
	if tweak != nil {
		tweak(&ccfg)
	}
	coord, err := cluster.New(ccfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	coord.Start()
	t.Cleanup(coord.Close)
	srv, ts := newTestServer(t, st, Config{Shards: shards, MaxRows: -1, Cluster: coord})
	return srv, ts, workers, coord
}

// clusterResult decodes the /query JSON body fields the cluster tests care
// about.
type clusterResult struct {
	Vars    []string   `json:"vars"`
	Rows    [][]string `json:"rows"`
	Count   int        `json:"count"`
	Error   string     `json:"error"`
	Partial []struct {
		Shard int    `json:"shard"`
		Mode  string `json:"mode"`
	} `json:"partial"`
}

// getCluster fetches a /query and returns the status, decoded body, and the
// HTTP trailers (readable only after the body is consumed).
func getCluster(t *testing.T, rawURL string) (int, clusterResult, http.Header) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var out clusterResult
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad JSON %.300q: %v", body, err)
		}
	} else {
		out.Error = string(body)
	}
	return resp.StatusCode, out, resp.Trailer
}

// rowSet renders rows as sorted strings for set comparisons.
func rowSet(rows [][]string) map[string]bool {
	set := make(map[string]bool, len(rows))
	for _, r := range rows {
		set[strings.Join(r, "\t")] = true
	}
	return set
}

const singlePatternQuery = `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`

// TestClusterMatchesUnsharded: with healthy workers, every query answered
// by the cluster coordinator returns exactly the rows the unsharded server
// returns — and the rows demonstrably travelled through remote drains.
func TestClusterMatchesUnsharded(t *testing.T) {
	st := denseStore(8)
	_, plain := newTestServer(t, st, Config{MaxRows: -1})
	srv, ts, _, coord := newClusterFixture(t, st, 3, 3, nil)

	queries := []string{
		singlePatternQuery,
		`SELECT ?a ?b WHERE { ?x <http://ex/p> ?a . ?x <http://ex/p> ?b }`,
		`SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z }`,
		triangleQuery,
	}
	for _, q := range queries {
		for _, eng := range []string{"emptyheaded", "naive"} {
			want := collectTSV(t, plain.URL, q, eng)
			got := collectTSV(t, ts.URL, q, eng)
			if len(got) != len(want) {
				t.Fatalf("%s %q: %d rows via cluster, %d unsharded", eng, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %q: row %d differs: %q vs %q", eng, q, i, got[i], want[i])
				}
			}
		}
	}
	// No faults: nothing may be flagged partial.
	code, res, trailer := getCluster(t, queryURL(ts.URL, triangleQuery, nil))
	if code != http.StatusOK || len(res.Partial) != 0 {
		t.Fatalf("healthy cluster flagged partial: code=%d partial=%+v", code, res.Partial)
	}
	if trailer.Get("X-Partial") != "" {
		t.Fatalf("healthy cluster sent X-Partial trailer %q", trailer.Get("X-Partial"))
	}
	st2 := coord.Stats()
	if st2.Attempts == 0 {
		t.Fatal("coordinator recorded no attempts — queries never went remote")
	}
	if st2.Retries != 0 || st2.PartialResults != 0 {
		t.Fatalf("healthy fleet recorded retries=%d partials=%d", st2.Retries, st2.PartialResults)
	}
	// /stats carries the cluster section with per-worker health.
	scode, sbody := get(t, ts.URL+"/stats")
	if scode != http.StatusOK || !strings.Contains(sbody, `"cluster"`) || !strings.Contains(sbody, `"workers"`) {
		t.Fatalf("/stats cluster section missing: %.400s", sbody)
	}
	if srv.Stats().Cluster == nil {
		t.Fatal("Stats().Cluster is nil on a cluster coordinator")
	}
}

// TestClusterFailoverOnWorkerDeath: with Replicas=2, killing one worker
// process leaves every shard reachable through its failover candidate —
// results stay complete and unflagged, and the retry/failover counters show
// the recovery happened.
func TestClusterFailoverOnWorkerDeath(t *testing.T) {
	st := denseStore(8)
	_, plain := newTestServer(t, st, Config{MaxRows: -1})
	_, ts, workers, coord := newClusterFixture(t, st, 3, 3, nil)

	want := collectTSV(t, plain.URL, triangleQuery, "emptyheaded")
	workers[1].Close() // SIGKILL equivalent: connections refuse from here on

	got := collectTSV(t, ts.URL, triangleQuery, "emptyheaded")
	if len(got) != len(want) {
		t.Fatalf("%d rows after worker death, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs after worker death: %q vs %q", i, got[i], want[i])
		}
	}
	code, res, _ := getCluster(t, queryURL(ts.URL, triangleQuery, nil))
	if code != http.StatusOK || len(res.Partial) != 0 {
		t.Fatalf("failover result flagged partial: code=%d partial=%+v", code, res.Partial)
	}
	cs := coord.Stats()
	if cs.Retries == 0 && cs.Failovers == 0 {
		t.Fatalf("no retries or failovers recorded after a worker died: %+v", cs)
	}
}

// TestClusterReplicaRecovery: with Replicas=1 a killed worker makes its
// shards genuinely unreachable. A single-pattern query is reassembled from
// the object-side replicas on the surviving shards; the response is
// honestly flagged partial with the recovery mode.
func TestClusterReplicaRecovery(t *testing.T) {
	st := denseStore(16)
	_, plain := newTestServer(t, st, Config{MaxRows: -1})
	_, ts, workers, coord := newClusterFixture(t, st, 3, 3, func(cfg *cluster.Config) {
		cfg.Replicas = 1
		cfg.Policy.MaxAttempts = 2
	})

	_, full, _ := getCluster(t, queryURL(plain.URL, singlePatternQuery, nil))
	workers[1].Close()

	code, res, trailer := getCluster(t, queryURL(ts.URL, singlePatternQuery, nil))
	if code != http.StatusOK {
		t.Fatalf("degraded query answered %d (%s), want 200", code, res.Error)
	}
	if len(res.Partial) == 0 {
		t.Fatal("lost shard not flagged in the partial field")
	}
	for _, p := range res.Partial {
		if p.Mode != "object-replicas" {
			t.Fatalf("partial mode = %q, want object-replicas", p.Mode)
		}
	}
	if tp := trailer.Get("X-Partial"); !strings.Contains(tp, "object-replicas") {
		t.Fatalf("X-Partial trailer = %q, want the recovery mode", tp)
	}
	// Recovered rows are a subset of the true result — never invented.
	fullSet := rowSet(full.Rows)
	for _, r := range res.Rows {
		if !fullSet[strings.Join(r, "\t")] {
			t.Fatalf("recovered row %v not in the true result", r)
		}
	}
	if res.Count == 0 {
		t.Fatal("replica recovery returned no rows at all")
	}
	if cs := coord.Stats(); cs.ReplicaRecoveries == 0 || cs.PartialResults == 0 {
		t.Fatalf("recovery counters not bumped: %+v", cs)
	}
}

// TestClusterPartialFlagged: with replica recovery disabled, a lost shard's
// rows are simply missing — the query still answers 200, flagged partial
// with mode "lost", never a 500.
func TestClusterPartialFlagged(t *testing.T) {
	st := denseStore(16)
	_, plain := newTestServer(t, st, Config{MaxRows: -1})
	_, ts, workers, _ := newClusterFixture(t, st, 3, 3, func(cfg *cluster.Config) {
		cfg.Replicas = 1
		cfg.Policy.MaxAttempts = 2
		cfg.DisableReplicaRecovery = true
	})

	_, full, _ := getCluster(t, queryURL(plain.URL, singlePatternQuery, nil))
	workers[2].Close()

	code, res, trailer := getCluster(t, queryURL(ts.URL, singlePatternQuery, nil))
	if code != http.StatusOK {
		t.Fatalf("degraded query answered %d (%s), want 200 + partial flag", code, res.Error)
	}
	if len(res.Partial) == 0 {
		t.Fatal("response not flagged partial")
	}
	for _, p := range res.Partial {
		if p.Mode != "lost" {
			t.Fatalf("partial mode = %q, want lost", p.Mode)
		}
	}
	if tp := trailer.Get("X-Partial"); !strings.Contains(tp, "lost") {
		t.Fatalf("X-Partial trailer = %q", tp)
	}
	if res.Count >= full.Count {
		t.Fatalf("lost-shard result has %d rows, full result %d — nothing went missing?", res.Count, full.Count)
	}
}

// TestClusterRetriesSurfaceInMetrics: a transient mid-stream fault is
// retried transparently (identical rows) and the retry shows up in
// Prometheus exposition — the observable the chaos CI asserts on.
func TestClusterRetriesSurfaceInMetrics(t *testing.T) {
	st := denseStore(8)
	_, plain := newTestServer(t, st, Config{MaxRows: -1})

	var plan cluster.FaultPlan
	var workerHosts []string
	_, ts, workers, _ := newClusterFixture(t, st, 3, 3, func(cfg *cluster.Config) {
		cfg.Transport = plan.Transport(nil)
	})
	for _, w := range workers {
		workerHosts = append(workerHosts, strings.TrimPrefix(w.URL, "http://"))
	}
	// Cut the first stream each worker serves after its first data frame.
	for _, h := range workerHosts {
		plan.Add(cluster.Fault{Worker: h, Kind: cluster.FaultTruncate, AfterFrames: 1, Count: 1})
	}

	want := collectTSV(t, plain.URL, triangleQuery, "emptyheaded")
	got := collectTSV(t, ts.URL, triangleQuery, "emptyheaded")
	if len(got) != len(want) {
		t.Fatalf("%d rows under stream faults, want %d (exactly-once resume broke)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs under stream faults: %q vs %q", i, got[i], want[i])
		}
	}
	if plan.Fired() == 0 {
		t.Fatal("no fault fired — the test exercised nothing")
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	retries := promValue(t, body, "rdf_shard_retries_total")
	if retries <= 0 {
		t.Fatalf("rdf_shard_retries_total = %v, want > 0 after injected stream faults", retries)
	}
	if v := promValue(t, body, "rdf_cluster_workers"); v != 3 {
		t.Fatalf("rdf_cluster_workers = %v, want 3", v)
	}
	if !strings.Contains(body, "rdf_worker_up{") || !strings.Contains(body, "rdf_shard_first_row_seconds_bucket") {
		t.Fatalf("cluster metric families missing from exposition: %.400s", body)
	}
}

// promValue extracts the value of an unlabelled metric sample.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

// shardStream is a decoded /shard/query response.
type shardStream struct {
	Vars  []string `json:"vars"`
	Epoch uint64   `json:"epoch"`
	Shard int      `json:"shard"`
	Rows  [][]uint32
	Err   string
}

// decodeShardStream parses the wire protocol (JSON header line, then
// little-endian length-prefixed frames) independently of internal/cluster's
// reader, so the endpoint's output format is pinned by a second
// implementation.
func decodeShardStream(t *testing.T, b []byte) shardStream {
	t.Helper()
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		t.Fatalf("no header line in %d-byte stream", len(b))
	}
	var out shardStream
	if err := json.Unmarshal(b[:nl], &out); err != nil {
		t.Fatalf("bad stream header %q: %v", b[:nl], err)
	}
	le := binary.LittleEndian
	off := nl + 1
	for {
		if off+8 > len(b) {
			t.Fatalf("stream ended without a terminal frame (offset %d of %d)", off, len(b))
		}
		nrows := le.Uint32(b[off+4 : off+8])
		if nrows == 0xFFFFFFFF { // terminal
			total := le.Uint32(b[off+8 : off+12])
			errLen := int(le.Uint32(b[off+12 : off+16]))
			out.Err = string(b[off+16 : off+16+errLen])
			if int(total) != len(out.Rows) {
				t.Fatalf("terminal row count %d != %d decoded", total, len(out.Rows))
			}
			return out
		}
		ncols := int(le.Uint32(b[off+8 : off+12]))
		off += 12
		for i := 0; i < int(nrows); i++ {
			row := make([]uint32, ncols)
			for j := 0; j < ncols; j++ {
				row[j] = le.Uint32(b[off : off+4])
				off += 4
			}
			out.Rows = append(out.Rows, row)
		}
		off += 4 // CRC (verified by internal/cluster's reader tests)
	}
}

// postShard POSTs a sub-query to /shard/query.
func postShard(t *testing.T, base, q string, params map[string]string) (int, []byte) {
	t.Helper()
	vals := url.Values{}
	for k, v := range params {
		vals.Set(k, v)
	}
	resp, err := http.Post(base+"/shard/query?"+vals.Encode(), "application/sparql-query", strings.NewReader(q))
	if err != nil {
		t.Fatalf("POST /shard/query: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, body
}

// TestShardQueryEndpoint pins the worker endpoint contract: ownership
// filtering partitions the result exactly, skip resumes past kept rows, cap
// bounds the stream, and the guard rails (405/400/409/404) hold.
func TestShardQueryEndpoint(t *testing.T) {
	st := denseStore(6)
	_, worker := newTestServer(t, st, Config{Shards: 3, MaxRows: -1})

	// The union of the three ownership-filtered drains is an exact partition
	// of the full result: every row exactly once.
	seen := map[string]int{}
	total := 0
	var epochs []uint64
	for sh := 0; sh < 3; sh++ {
		code, body := postShard(t, worker.URL, singlePatternQuery, map[string]string{
			"shard": strconv.Itoa(sh), "shards": "3", "owner": strconv.Itoa(sh), "root": "0",
		})
		if code != http.StatusOK {
			t.Fatalf("shard %d: status %d: %.200s", sh, code, body)
		}
		stream := decodeShardStream(t, body)
		if stream.Err != "" {
			t.Fatalf("shard %d reported %q", sh, stream.Err)
		}
		if stream.Shard != sh || len(stream.Vars) != 2 {
			t.Fatalf("shard %d header = %+v", sh, stream)
		}
		epochs = append(epochs, stream.Epoch)
		for _, r := range stream.Rows {
			seen[strconv.Itoa(int(r[0]))+","+strconv.Itoa(int(r[1]))]++
			total++
		}
	}
	if total != st.NumTriples() {
		t.Fatalf("union of ownership-filtered drains = %d rows, want %d", total, st.NumTriples())
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("row %s delivered %d times across shards — ownership filter overlaps", k, n)
		}
	}
	if epochs[0] != epochs[1] || epochs[1] != epochs[2] {
		t.Fatalf("epochs differ across drains of one store: %v", epochs)
	}

	// skip resumes exactly past the first N kept rows; cap bounds the rest.
	_, fullBody := postShard(t, worker.URL, singlePatternQuery, map[string]string{
		"shard": "0", "shards": "3", "owner": "0", "root": "0",
	})
	kept := decodeShardStream(t, fullBody).Rows
	if len(kept) < 4 {
		t.Fatalf("shard 0 owns only %d rows; the store is too small for the resume test", len(kept))
	}
	_, resumedBody := postShard(t, worker.URL, singlePatternQuery, map[string]string{
		"shard": "0", "shards": "3", "owner": "0", "root": "0", "skip": "2",
	})
	resumed := decodeShardStream(t, resumedBody).Rows
	if len(resumed) != len(kept)-2 {
		t.Fatalf("skip=2 returned %d rows, want %d", len(resumed), len(kept)-2)
	}
	for i := range resumed {
		if resumed[i][0] != kept[i+2][0] || resumed[i][1] != kept[i+2][1] {
			t.Fatalf("resumed row %d = %v, want %v (deterministic order is the resume contract)", i, resumed[i], kept[i+2])
		}
	}
	_, cappedBody := postShard(t, worker.URL, singlePatternQuery, map[string]string{
		"shard": "0", "shards": "3", "owner": "0", "root": "0", "cap": "3",
	})
	if capped := decodeShardStream(t, cappedBody).Rows; len(capped) != 3 {
		t.Fatalf("cap=3 returned %d rows", len(capped))
	}

	// Guard rails.
	if code, _ := postShard(t, worker.URL, singlePatternQuery, map[string]string{"shard": "0", "shards": "5"}); code != http.StatusConflict {
		t.Fatalf("shard-count mismatch answered %d, want 409", code)
	}
	if code, _ := postShard(t, worker.URL, singlePatternQuery, map[string]string{"shard": "7", "shards": "3"}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range shard answered %d, want 400", code)
	}
	if code, _ := postShard(t, worker.URL, singlePatternQuery, map[string]string{"shard": "0", "shards": "3", "owner": "0", "root": "9"}); code != http.StatusBadRequest {
		t.Fatalf("bad root index answered %d, want 400", code)
	}
	if code, _ := postShard(t, worker.URL, "NOT SPARQL", map[string]string{"shard": "0", "shards": "3"}); code != http.StatusBadRequest {
		t.Fatalf("unparsable sub-query answered %d, want 400", code)
	}
	resp, err := http.Get(worker.URL + "/shard/query?shard=0&shards=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET answered %d, want 405", resp.StatusCode)
	}

	// Unsharded servers and cluster coordinators do not expose the endpoint.
	_, plainTS := newTestServer(t, smallStore(), Config{})
	if code, _ := postShard(t, plainTS.URL, singlePatternQuery, map[string]string{"shard": "0", "shards": "1"}); code != http.StatusNotFound {
		t.Fatalf("unsharded server answered %d on /shard/query, want 404", code)
	}
	_, coordTS, _, _ := newClusterFixture(t, smallStore(), 1, 2, nil)
	if code, _ := postShard(t, coordTS.URL, singlePatternQuery, map[string]string{"shard": "0", "shards": "2"}); code != http.StatusNotFound {
		t.Fatalf("coordinator answered %d on /shard/query, want 404 (self-loop guard)", code)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler costs one request — 500
// when uncommitted, counted either way, with http.ErrAbortHandler passed
// through untouched.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, ts := newTestServer(t, smallStore(), Config{})

	// Uncommitted panic: the middleware answers 500.
	h := srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("recovered panic answered %d, want 500", rec.Code)
	}
	if srv.Stats().Panics != 1 {
		t.Fatalf("Panics = %d, want 1", srv.Stats().Panics)
	}

	// Committed panic: the 200 is already on the wire; no second status.
	h = srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("mid-stream kaboom")
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "partial" {
		t.Fatalf("committed response mangled: code=%d body=%q", rec.Code, rec.Body.String())
	}
	if srv.Stats().Panics != 2 {
		t.Fatalf("Panics = %d, want 2", srv.Stats().Panics)
	}

	// http.ErrAbortHandler is net/http's sanctioned abort: re-panicked, not
	// counted.
	h = srv.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("ErrAbortHandler was swallowed instead of re-panicked")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/query", nil))
	}()
	if srv.Stats().Panics != 2 {
		t.Fatalf("Panics = %d after ErrAbortHandler, want still 2", srv.Stats().Panics)
	}

	// The whole Handler() chain is wrapped: /stats and /metrics surface the
	// counter.
	if _, body := get(t, ts.URL+"/stats"); !strings.Contains(body, `"panics"`) {
		t.Fatalf("/stats has no panics counter: %.300s", body)
	}
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(body, "rdf_panics_total") {
		t.Fatal("/metrics has no rdf_panics_total family")
	}
}

// TestQueryTimeoutCeiling: Config.QueryTimeout caps even an explicitly
// larger client ?timeout=, the request 504s, and with ?explain=1 the 504
// body carries the span tree showing where the deadline landed.
func TestQueryTimeoutCeiling(t *testing.T) {
	srv, ts := newTestServer(t, denseStore(30), Config{QueryTimeout: time.Nanosecond})

	start := time.Now()
	code, body := get(t, queryURL(ts.URL, triangleQuery, map[string]string{"timeout": "2m"}))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (the ceiling must cap ?timeout=2m); body %.200s", code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("504 took %v — the ceiling did not actually bound the query", elapsed)
	}
	if strings.Contains(body, `"trace"`) {
		t.Fatalf("un-explained 504 carries a trace: %.300s", body)
	}
	if srv.Stats().Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", srv.Stats().Timeouts)
	}

	code, body = get(t, queryURL(ts.URL, triangleQuery, map[string]string{"timeout": "2m", "explain": "1"}))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("explained timeout status = %d, want 504; body %.200s", code, body)
	}
	var out struct {
		Error string          `json:"error"`
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("504 body is not JSON: %v (%.200s)", err, body)
	}
	if out.Error == "" || len(out.Trace) == 0 || !strings.Contains(string(out.Trace), `"name"`) {
		t.Fatalf("explained 504 misses error/trace: %.400s", body)
	}
}

// TestHealthzReportsWALFailure: a latched WAL failure turns /healthz into
// an honest 503 (load balancers stop routing updates here) and surfaces in
// /stats and /metrics.
func TestHealthzReportsWALFailure(t *testing.T) {
	d, _, ts := newDurableServer(t)

	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthy /healthz = %d %.200s", code, body)
	}

	d.Log().InjectFailure()

	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with a failed WAL = %d, want 503; body %.200s", code, body)
	}
	var resp map[string]any
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("healthz body not JSON: %v", err)
	}
	if resp["status"] != "degraded" || resp["wal"] != "failed" {
		t.Fatalf("healthz body = %v, want status=degraded wal=failed", resp)
	}
	if _, sbody := get(t, ts.URL+"/stats"); !strings.Contains(sbody, `"wal_failed":true`) {
		t.Fatalf("/stats does not report wal_failed: %.400s", sbody)
	}
	if _, mbody := get(t, ts.URL+"/metrics"); !strings.Contains(mbody, "rdf_wal_failed 1") {
		t.Fatal("/metrics does not report rdf_wal_failed 1")
	}
}
