package server

// End-to-end tests of the write path: POST /update patches the delta
// overlay while the handler keeps answering queries, POST /compact swaps a
// fresh base in under a new epoch, the plan cache never serves a pre-swap
// plan (epoch-keyed), and the configured snapshot is persisted atomically.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func updateTestStore() *store.Store {
	b := store.NewBuilder()
	p := rdf.NewIRI("http://u/p")
	for i := 0; i < 8; i++ {
		b.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://u/s%d", i)),
			P: p,
			O: rdf.NewIRI(fmt.Sprintf("http://u/s%d", (i+1)%8)),
		})
	}
	return b.Build()
}

func postUpdate(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url+"/update", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /update = %d: %s", resp.StatusCode, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func countRows(t *testing.T, url, q string) int {
	t.Helper()
	resp, err := http.Get(url + "/query?query=" + strings.ReplaceAll(q, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /query = %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Count
}

const updateScan = `SELECT ?s ?o WHERE { ?s <http://u/p> ?o }`

func TestUpdateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "u.snap")
	srv, err := New(Config{Store: updateTestStore(), SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if n := countRows(t, ts.URL, updateScan); n != 8 {
		t.Fatalf("base rows = %d, want 8", n)
	}

	// Insert two edges, delete one base edge — visible immediately, no
	// compaction needed.
	rep := postUpdate(t, ts.URL, "+<http://u/n1> <http://u/p> <http://u/s0> .\n"+
		"<http://u/n2> <http://u/p> <http://u/n1> .\n"+
		"-<http://u/s0> <http://u/p> <http://u/s1> .\n")
	if rep["inserted"].(float64) != 2 || rep["deleted"].(float64) != 1 {
		t.Fatalf("update reply: %v", rep)
	}
	if n := countRows(t, ts.URL, updateScan); n != 9 {
		t.Fatalf("overlay rows = %d, want 9", n)
	}

	// Stats reflect the delta and the epoch has not moved.
	st := srv.Stats()
	if st.Live == nil || st.Live.Epoch != 0 || st.Live.DeltaInserts != 2 || st.Live.DeltaTombstones != 1 {
		t.Fatalf("live stats: %+v", st.Live)
	}
	if st.Triples != 9 || st.Live.BaseTriples != 8 {
		t.Fatalf("triple counts: total=%d base=%d", st.Triples, st.Live.BaseTriples)
	}
	if st.Live.Updates != 1 || st.Live.TriplesInserted != 2 || st.Live.TriplesDeleted != 1 {
		t.Fatalf("update counters: %+v", st.Live)
	}

	// Compact: new epoch, empty delta, same query results, snapshot
	// persisted and loadable.
	resp, err := http.Post(ts.URL+"/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var comp map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if comp["compacted"] != true || comp["epoch"].(float64) != 1 {
		t.Fatalf("compact reply: %v", comp)
	}
	if n := countRows(t, ts.URL, updateScan); n != 9 {
		t.Fatalf("post-compact rows = %d, want 9", n)
	}
	st = srv.Stats()
	if st.Live.Epoch != 1 || st.Live.DeltaInserts != 0 || st.Live.BaseTriples != 9 || st.Live.Compactions != 1 {
		t.Fatalf("post-compact live stats: %+v", st.Live)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	reloaded, err := store.ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.NumTriples() != 9 {
		t.Fatalf("reloaded snapshot has %d triples, want 9", reloaded.NumTriples())
	}

	// An empty patch is a valid no-op.
	rep = postUpdate(t, ts.URL, "")
	if rep["inserted"].(float64) != 0 {
		t.Fatalf("empty patch reply: %v", rep)
	}

	// ?compact=true on the update itself.
	resp, err = http.Post(ts.URL+"/update?compact=true", "text/plain",
		strings.NewReader("+<http://u/n3> <http://u/p> <http://u/n1> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	var rep2 map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rep2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep2["compacted"] != true || rep2["epoch"].(float64) != 2 {
		t.Fatalf("update+compact reply: %v", rep2)
	}
	if n := countRows(t, ts.URL, updateScan); n != 10 {
		t.Fatalf("rows after update+compact = %d, want 10", n)
	}
}

// TestPlanCacheEpochInvalidation: a plan cached before a compaction must
// never be served afterwards — the epoch in the cache key forces a miss and
// a recompile against the new base, and results stay correct for data that
// only exists post-swap.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	srv, err := New(Config{Store: updateTestStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The constant in this query does not exist yet: the compiled plan is
	// the Empty plan (constant absent from the dictionary at epoch 0).
	probe := `SELECT ?o WHERE { <http://u/new> <http://u/p> ?o }`
	if n := countRows(t, ts.URL, probe); n != 0 {
		t.Fatalf("probe rows before insert = %d, want 0", n)
	}
	c0 := srv.Stats().PlanCache
	if n := countRows(t, ts.URL, probe); n != 0 {
		t.Fatal("probe rows changed without updates")
	}
	c1 := srv.Stats().PlanCache
	if c1.Hits != c0.Hits+1 {
		t.Fatalf("same-epoch repeat was not a cache hit: %+v -> %+v", c0, c1)
	}

	// Insert the entity and compact: the swap must invalidate the cached
	// Empty plan. If the old entry were served, the query would wrongly
	// return zero rows forever.
	postUpdate(t, ts.URL, "+<http://u/new> <http://u/p> <http://u/s0> .\n+<http://u/new> <http://u/p> <http://u/s1> .\n")
	if n := countRows(t, ts.URL, probe); n != 2 {
		t.Fatalf("probe rows with delta = %d, want 2", n)
	}
	if _, err := http.Post(ts.URL+"/compact", "", nil); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, ts.URL, probe); n != 2 {
		t.Fatalf("probe rows after compaction = %d, want 2 (stale pre-swap plan served?)", n)
	}
	c2 := srv.Stats().PlanCache
	if c2.Misses <= c1.Misses {
		t.Fatalf("post-swap query did not miss the epoch-keyed cache: %+v -> %+v", c1, c2)
	}
}

func TestUpdateRejections(t *testing.T) {
	srv, err := New(Config{Store: updateTestStore(), MaxUpdateBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update = %d, want 405", resp.StatusCode)
	}

	// Malformed patch line.
	resp, err = http.Post(ts.URL+"/update", "text/plain", strings.NewReader("not a triple\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed patch = %d, want 400", resp.StatusCode)
	}

	// Oversized body.
	big := strings.Repeat("+<http://u/a> <http://u/p> <http://u/b> .\n", 10)
	resp, err = http.Post(ts.URL+"/update", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized patch = %d, want 413", resp.StatusCode)
	}

	// Nothing of the above changed the store.
	if n := srv.Live().NumTriples(); n != 8 {
		t.Fatalf("rejected updates mutated the store: %d triples", n)
	}
}
