package server

import (
	"sort"
	"sync"
	"time"
)

// latencySampleCap bounds the reservoir used for percentile estimates; with
// more than latencySampleCap recorded queries, percentiles reflect the most
// recent window (a ring buffer), which is what an operator watching /stats
// wants anyway.
const latencySampleCap = 4096

// LatencyStats summarizes observed query latencies (successful and failed
// requests alike; queue wait included).
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Triples       int               `json:"triples"`
	Terms         int               `json:"terms"`
	Queries       uint64            `json:"queries"`
	Errors        uint64            `json:"errors"`
	Timeouts      uint64            `json:"timeouts"`
	Active        int               `json:"active"`
	ByEngine      map[string]uint64 `json:"by_engine"`
	PlanCache     CacheStats        `json:"plan_cache"`
	Latency       LatencyStats      `json:"latency"`
}

// metrics accumulates serving counters. All methods are safe for concurrent
// use.
type metrics struct {
	mu       sync.Mutex
	queries  uint64
	errors   uint64
	timeouts uint64
	active   int
	byEngine map[string]uint64

	count uint64
	sum   time.Duration
	max   time.Duration
	ring  []time.Duration
	next  int
}

func newMetrics() *metrics {
	return &metrics{byEngine: map[string]uint64{}}
}

func (m *metrics) begin() {
	m.mu.Lock()
	m.active++
	m.mu.Unlock()
}

// end records one finished request. timeout implies error.
func (m *metrics) end(engine string, d time.Duration, isErr, isTimeout bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active--
	m.queries++
	if engine != "" {
		m.byEngine[engine]++
	}
	if isErr {
		m.errors++
	}
	if isTimeout {
		m.timeouts++
	}
	m.count++
	m.sum += d
	if d > m.max {
		m.max = d
	}
	if len(m.ring) < latencySampleCap {
		m.ring = append(m.ring, d)
	} else {
		m.ring[m.next] = d
		m.next = (m.next + 1) % latencySampleCap
	}
}

func (m *metrics) snapshot() (queries, errors, timeouts uint64, active int, byEngine map[string]uint64, lat LatencyStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byEngine = make(map[string]uint64, len(m.byEngine))
	for k, v := range m.byEngine {
		byEngine[k] = v
	}
	lat = LatencyStats{Count: m.count, MaxMs: ms(m.max)}
	if m.count > 0 {
		lat.MeanMs = ms(m.sum) / float64(m.count)
	}
	if len(m.ring) > 0 {
		sorted := make([]time.Duration, len(m.ring))
		copy(sorted, m.ring)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		lat.P50Ms = ms(Quantile(sorted, 0.50))
		lat.P90Ms = ms(Quantile(sorted, 0.90))
		lat.P99Ms = ms(Quantile(sorted, 0.99))
	}
	return m.queries, m.errors, m.timeouts, m.active, byEngine, lat
}

// Quantile returns the p-quantile of sorted durations (nearest-rank
// method). It is exported so the load generator (internal/bench) reports
// percentiles computed exactly like the server's own /stats — the two are
// meant to be compared side by side.
func Quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
