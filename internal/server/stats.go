package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/stats"
)

// LatencyStats summarizes observed query latencies (successful and failed
// requests alike; queue wait included). Percentiles are interpolated from
// the same fixed-bucket histograms /metrics exports, so the two surfaces
// can never disagree about the same window.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// EngineLatency summarizes one engine's execution latency: cursor open to
// end of stream. Queue wait is excluded; response encoding is included,
// because under streaming the engine enumerates concurrently with the
// encoder — open-to-last-row wall time is the execution. (A slow client
// therefore stretches this number; cross-check against the global latency
// split when a single engine's tail looks anomalous.) Its purpose is to
// let loadgen runs attribute tail latency to an engine.
type EngineLatency struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// HoldEWMAMs is the engine's worker-pool slot-hold EWMA — the number
	// admission control multiplies by queue depth for requests naming this
	// engine. Kept per engine so the pairwise baselines (orders of
	// magnitude slower) cannot inflate Retry-After for the WCOJ engines.
	HoldEWMAMs float64 `json:"hold_ewma_ms"`
}

// ShardingStats reports the horizontal partition layout and the merge
// cursors' cumulative drain balance when the server runs sharded.
type ShardingStats struct {
	Shards int `json:"shards"`
	// OwnedTriples[i] counts triples whose subject shard i owns.
	OwnedTriples []int `json:"owned_triples"`
	// ReplicatedTriples[i] counts triples copied to shard i for their
	// object (the replicated-by-object index backing cross-subject joins).
	ReplicatedTriples []int `json:"replicated_triples"`
	// MergeRowsDelivered[i] is the cumulative number of rows shard i has
	// contributed to scatter-gather merge cursors; a skewed distribution
	// means the subject hash is not spreading the queried entities.
	MergeRowsDelivered []int64 `json:"merge_rows_delivered"`
	// ShardsPruned counts (group, shard) scatter targets skipped because
	// per-shard statistics proved they could not contribute rows. Zero on
	// a workload that should prune means the scatter is paying full fan-out
	// on every query — the regression this counter exists to catch.
	ShardsPruned int64 `json:"shards_pruned"`
	// GroupsPlanned counts root-covered groups compiled into scatter plans.
	GroupsPlanned int64 `json:"groups_planned"`
	// PlanReuseHits counts queries answered from a cached scatter plan
	// (decomposition, pruning, probe choice, and the per-shard sub-queries
	// all reused). Near-zero under a repeated-query workload means the plan
	// cache is not interning queries to stable pointers.
	PlanReuseHits int64 `json:"plan_reuse_hits"`
	// PlansCompiled counts scatter-plan cache misses.
	PlansCompiled int64 `json:"plans_compiled"`
}

// DurabilityStats reports the storage engine behind a durable server: the
// write-ahead log's size and fsync activity, what boot-time recovery found,
// and the mmap'd base segment (internal/durable).
type DurabilityStats struct {
	// FsyncPolicy is the log's sync policy in -fsync flag syntax:
	// "always", "off", or a group-commit interval like "50ms".
	FsyncPolicy string `json:"fsync_policy"`
	// WALBytes is the current log file size; it returns to zero when a
	// compaction persists its segment and truncates the log.
	WALBytes int64 `json:"wal_bytes"`
	// WALRecords counts patch records appended by this process (boot-time
	// replays are under ReplayedRecords instead).
	WALRecords uint64 `json:"wal_records"`
	// WALSyncs counts fsyncs issued; LastFsyncMs is the age of the newest.
	WALSyncs    uint64  `json:"wal_syncs"`
	LastFsyncMs float64 `json:"last_fsync_ms"`
	// WALFailed reports the log's latched-failed state: a write or fsync
	// error poisoned the log, updates are being refused, and /healthz is
	// answering 503 {"wal":"failed"}.
	WALFailed bool `json:"wal_failed"`
	// ReplayedRecords/ReplayedOps describe boot-time WAL recovery;
	// TornBytesTruncated is how much torn tail it cut off the log.
	ReplayedRecords    int   `json:"replayed_records"`
	ReplayedOps        int   `json:"replayed_ops"`
	TornBytesTruncated int64 `json:"torn_bytes_truncated"`
	// CleanShutdown reports whether the log ended with a seal record at
	// boot (false after a crash).
	CleanShutdown bool `json:"clean_shutdown"`
	// SegmentBytes is the base segment file's size; SegmentsMapped counts
	// open mappings (superseded segments stay mapped until shutdown
	// because pinned cursors may still read them); Mmap is false when the
	// platform fell back to heap reads.
	SegmentBytes   int64 `json:"segment_bytes"`
	SegmentsMapped int   `json:"segments_mapped"`
	Mmap           bool  `json:"mmap"`
	// CompactionsPersisted counts segment files written by this process.
	CompactionsPersisted uint64 `json:"compactions_persisted"`
}

// LiveStats reports the write path: delta overlay sizes, the epoch counter,
// and compaction activity (internal/live).
type LiveStats struct {
	// Epoch increments on every base swap (compaction, re-sharding); the
	// plan cache is keyed by it.
	Epoch uint64 `json:"epoch"`
	// BaseTriples is the immutable base's size; DeltaInserts and
	// DeltaTombstones are the netted pending operations over it;
	// OverlayTriples = BaseTriples - DeltaTombstones + DeltaInserts is what
	// queries see.
	BaseTriples     int `json:"base_triples"`
	DeltaInserts    int `json:"delta_inserts"`
	DeltaTombstones int `json:"delta_tombstones"`
	OverlayTriples  int `json:"overlay_triples"`
	// PinnedReaders counts cursors currently pinned to the present epoch
	// state.
	PinnedReaders int64 `json:"pinned_readers"`
	// Updates counts applied /update patches; TriplesInserted and
	// TriplesDeleted are their cumulative effective (non-noop) operations.
	Updates         uint64 `json:"updates"`
	TriplesInserted uint64 `json:"triples_inserted"`
	TriplesDeleted  uint64 `json:"triples_deleted"`
	// Compactions counts base swaps; the Last fields describe the most
	// recent one.
	Compactions        uint64  `json:"compactions"`
	LastCompactMs      float64 `json:"last_compact_ms"`
	LastCompactDrained int     `json:"last_compact_drained"`
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Triples       int     `json:"triples"`
	Terms         int     `json:"terms"`
	// IndexMemoryBytes estimates the heap held by trie indexes built so
	// far (flat-trie arenas: values, bit words, rank directories, CSR
	// offsets, set headers), across the base store and all shards. Lazily
	// built indexes appear here as traffic warms them; the counter resets
	// when a compaction swaps in a fresh base.
	IndexMemoryBytes int    `json:"index_memory_bytes"`
	Queries          uint64 `json:"queries"`
	Errors           uint64 `json:"errors"`
	Timeouts         uint64 `json:"timeouts"`
	// Rejected counts requests turned away by admission control (429):
	// their estimated queue wait exceeded their remaining deadline.
	Rejected uint64 `json:"rejected"`
	// Panics counts handler panics recovered by the middleware (each one
	// answered 500 instead of killing the process). Nonzero means a bug —
	// the counter exists so it pages instead of hiding in logs.
	Panics uint64 `json:"panics"`
	// Active is requests currently being handled end-to-end (queueing,
	// executing, or encoding).
	Active int `json:"active"`
	// InFlightSlots is worker-pool slots currently held by executing
	// queries (a ?workers=N query holds N).
	InFlightSlots int `json:"in_flight_slots"`
	// QueueDepth is requests waiting for worker-pool slots.
	QueueDepth    int                      `json:"queue_depth"`
	ByEngine      map[string]uint64        `json:"by_engine"`
	EngineLatency map[string]EngineLatency `json:"engine_latency"`
	PlanCache     CacheStats               `json:"plan_cache"`
	Latency       LatencyStats             `json:"latency"`
	// Sharding is present only when the server partitioned its store
	// (Config.Shards > 1).
	Sharding *ShardingStats `json:"sharding,omitempty"`
	// Cluster is present only on a coordinator (Config.Cluster): worker
	// fleet health and the scatter-gather robustness counters (retries,
	// hedges, failovers, partial results).
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Chooser reports the statistics-driven decision ledger: adaptive
	// layout choices (and how often they flipped the paper's 1-in-256
	// rule), the auto engine's per-class picks, and the routing decision
	// cache's hit rate.
	Chooser stats.ChooserSnapshot `json:"chooser"`
	// Durability is present only on durable servers (Config.Durable).
	Durability *DurabilityStats `json:"durability,omitempty"`
	// Live reports the write path: delta sizes, epoch, compactions.
	Live *LiveStats `json:"live,omitempty"`
}

// engStat is one engine's counters: request count, an execution-latency
// histogram for percentiles (the same one /metrics exports), and the
// slot-hold EWMA admission control reads.
type engStat struct {
	count    uint64
	hist     *obs.Hist
	max      time.Duration
	holdEWMA time.Duration
}

// metrics accumulates serving counters. All methods are safe for concurrent
// use.
type metrics struct {
	mu       sync.Mutex
	queries  uint64
	errors   uint64
	timeouts uint64
	rejected uint64
	active   int
	byEngine map[string]*engStat

	// lat distributes total request durations (queue wait included); it
	// backs both the /stats percentiles and the /metrics
	// rdf_query_latency_seconds histogram. max is tracked separately — a
	// bucketed histogram can only bound the maximum, not report it.
	lat *obs.Hist
	max time.Duration

	// holdSlots tracks worker-pool slots currently held, per engine
	// (beginHold/endHold) — the occupancy view estimateWait reads.
	holdSlots map[string]int

	// Write-path counters: applied patches and their cumulative effective
	// operations.
	updates         uint64
	triplesInserted uint64
	triplesDeleted  uint64

	// panics counts recovered handler panics; atomic because the recovery
	// middleware runs outside the request accounting and must never itself
	// contend (or fail) while the process is already in a bad state.
	panics atomic.Uint64
}

// panicked counts one recovered handler panic.
func (m *metrics) panicked() { m.panics.Add(1) }

// panicsCount reports recovered handler panics.
func (m *metrics) panicsCount() uint64 { return m.panics.Load() }

// engStatLocked returns (creating on demand) the named engine's counters.
// Caller holds m.mu.
func (m *metrics) engStatLocked(engine string) *engStat {
	es := m.byEngine[engine]
	if es == nil {
		es = &engStat{hist: obs.NewHist(obs.LatencyBuckets())}
		m.byEngine[engine] = es
	}
	return es
}

func newMetrics() *metrics {
	return &metrics{
		byEngine:  map[string]*engStat{},
		holdSlots: map[string]int{},
		lat:       obs.NewHist(obs.LatencyBuckets()),
	}
}

func (m *metrics) begin() {
	m.mu.Lock()
	m.active++
	m.mu.Unlock()
}

// end records one finished request: total duration (queue wait included)
// feeds the global latency stats; execDur, when positive, feeds the named
// engine's execution-latency ring. timeout implies error.
func (m *metrics) end(engine string, total, execDur time.Duration, isErr, isTimeout bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active--
	m.queries++
	if engine != "" {
		es := m.engStatLocked(engine)
		es.count++
		if execDur > 0 {
			es.hist.ObserveDuration(execDur)
			if execDur > es.max {
				es.max = execDur
			}
		}
	}
	if isErr {
		m.errors++
	}
	if isTimeout {
		m.timeouts++
	}
	m.lat.ObserveDuration(total)
	if total > m.max {
		m.max = total
	}
}

// update records one applied /update patch and its effective operations.
func (m *metrics) update(inserted, deleted int) {
	m.mu.Lock()
	m.updates++
	m.triplesInserted += uint64(inserted)
	m.triplesDeleted += uint64(deleted)
	m.mu.Unlock()
}

// updateCounts snapshots the write-path counters.
func (m *metrics) updateCounts() (updates, inserted, deleted uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.updates, m.triplesInserted, m.triplesDeleted
}

// reject counts one admission-control rejection.
func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// beginHold records that a request for engine now holds that many
// worker-pool slots.
func (m *metrics) beginHold(engine string, slots int) {
	m.mu.Lock()
	m.holdSlots[engine] += slots
	m.mu.Unlock()
}

// endHold releases the occupancy accounting and folds one observed
// slot-hold duration into the named engine's EWMA. Hold times are kept
// strictly per engine: the pairwise baselines hold slots orders of
// magnitude longer than the WCOJ engines, and one shared EWMA would let a
// burst of slow-engine traffic pollute every later estimate even after the
// pool has drained. slots == 0 is a pure EWMA sample (tests use it to
// seed).
func (m *metrics) endHold(engine string, slots int, d time.Duration) {
	m.mu.Lock()
	if slots > 0 {
		if n := m.holdSlots[engine] - slots; n > 0 {
			m.holdSlots[engine] = n
		} else {
			delete(m.holdSlots, engine)
		}
	}
	es := m.engStatLocked(engine)
	if es.holdEWMA == 0 {
		es.holdEWMA = d
	} else {
		// α = 1/8: smooth enough to ride out one odd query, fresh enough
		// to track load shifts within a few dozen requests.
		es.holdEWMA += (d - es.holdEWMA) / 8
	}
	m.mu.Unlock()
}

// expectedHold estimates how long one pool slot will stay held: the
// slot-weighted mean of the hold EWMAs of the engines currently occupying
// the pool — queue wait is governed by who holds the slots, not by what
// the newcomer will run. With no (tracked) occupancy it falls back to the
// requester's own EWMA, and an engine with no samples yet reports 0 —
// admission control admits and learns rather than inheriting another
// engine's history.
func (m *metrics) expectedHold(requester string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total time.Duration
	slots := 0
	for eng, k := range m.holdSlots {
		if es := m.byEngine[eng]; es != nil && es.holdEWMA > 0 && k > 0 {
			total += es.holdEWMA * time.Duration(k)
			slots += k
		}
	}
	if slots > 0 {
		return total / time.Duration(slots)
	}
	if es := m.byEngine[requester]; es != nil {
		return es.holdEWMA
	}
	return 0
}

func (m *metrics) snapshot() (queries, errors, timeouts, rejected uint64, active int, byEngine map[string]uint64, engLat map[string]EngineLatency, lat LatencyStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byEngine = make(map[string]uint64, len(m.byEngine))
	engLat = make(map[string]EngineLatency, len(m.byEngine))
	// Percentiles interpolate within their bucket, so the tail quantiles of
	// a small sample can overshoot the true maximum; clamping to the exactly
	// tracked max keeps the reported ladder plausible (p99 ≤ max, always).
	clamp := func(q, max time.Duration) float64 {
		if q > max {
			q = max
		}
		return ms(q)
	}
	for k, es := range m.byEngine {
		byEngine[k] = es.count
		el := EngineLatency{Count: es.count, HoldEWMAMs: ms(es.holdEWMA)}
		if hs := es.hist.Snapshot(); hs.Count > 0 {
			el.P50Ms = clamp(hs.QuantileDuration(0.50), es.max)
			el.P99Ms = clamp(hs.QuantileDuration(0.99), es.max)
		}
		engLat[k] = el
	}
	hs := m.lat.Snapshot()
	lat = LatencyStats{Count: hs.Count, MaxMs: ms(m.max)}
	if hs.Count > 0 {
		lat.MeanMs = hs.Sum / float64(hs.Count) * 1e3
		lat.P50Ms = clamp(hs.QuantileDuration(0.50), m.max)
		lat.P90Ms = clamp(hs.QuantileDuration(0.90), m.max)
		lat.P99Ms = clamp(hs.QuantileDuration(0.99), m.max)
	}
	return m.queries, m.errors, m.timeouts, m.rejected, m.active, byEngine, engLat, lat
}

// histSnapshots returns the latency histograms /metrics exports verbatim:
// the global request-duration histogram and one execution-latency
// histogram per engine. /stats percentiles above are interpolated from
// these same snapshots.
func (m *metrics) histSnapshots() (global obs.HistSnapshot, byEngine map[string]obs.HistSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byEngine = make(map[string]obs.HistSnapshot, len(m.byEngine))
	for k, es := range m.byEngine {
		byEngine[k] = es.hist.Snapshot()
	}
	return m.lat.Snapshot(), byEngine
}

// Quantile returns the p-quantile of sorted durations (nearest-rank
// method). It is exported so the load generator (internal/bench) reports
// percentiles computed exactly like the server's own /stats — the two are
// meant to be compared side by side.
func Quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
