package server

import (
	"sort"
	"sync"
	"time"
)

// latencySampleCap bounds the reservoir used for percentile estimates; with
// more than latencySampleCap recorded queries, percentiles reflect the most
// recent window (a ring buffer), which is what an operator watching /stats
// wants anyway.
const latencySampleCap = 4096

// engineSampleCap bounds each per-engine execution-latency ring. Smaller
// than the global ring: there are up to six engines and the per-engine
// percentiles exist to attribute tail latency, not to archive it.
const engineSampleCap = 1024

// LatencyStats summarizes observed query latencies (successful and failed
// requests alike; queue wait included).
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// EngineLatency summarizes one engine's execution latency: cursor open to
// end of stream. Queue wait is excluded; response encoding is included,
// because under streaming the engine enumerates concurrently with the
// encoder — open-to-last-row wall time is the execution. (A slow client
// therefore stretches this number; cross-check against the global latency
// split when a single engine's tail looks anomalous.) Its purpose is to
// let loadgen runs attribute tail latency to an engine.
type EngineLatency struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Triples       int     `json:"triples"`
	Terms         int     `json:"terms"`
	Queries       uint64  `json:"queries"`
	Errors        uint64  `json:"errors"`
	Timeouts      uint64  `json:"timeouts"`
	// Rejected counts requests turned away by admission control (429):
	// their estimated queue wait exceeded their remaining deadline.
	Rejected uint64 `json:"rejected"`
	// Active is requests currently being handled end-to-end (queueing,
	// executing, or encoding).
	Active int `json:"active"`
	// InFlightSlots is worker-pool slots currently held by executing
	// queries (a ?workers=N query holds N).
	InFlightSlots int `json:"in_flight_slots"`
	// QueueDepth is requests waiting for worker-pool slots.
	QueueDepth    int                      `json:"queue_depth"`
	ByEngine      map[string]uint64        `json:"by_engine"`
	EngineLatency map[string]EngineLatency `json:"engine_latency"`
	PlanCache     CacheStats               `json:"plan_cache"`
	Latency       LatencyStats             `json:"latency"`
}

// engStat is one engine's counters: request count plus an execution-latency
// ring for percentiles.
type engStat struct {
	count uint64
	ring  []time.Duration
	next  int
}

// metrics accumulates serving counters. All methods are safe for concurrent
// use.
type metrics struct {
	mu       sync.Mutex
	queries  uint64
	errors   uint64
	timeouts uint64
	rejected uint64
	active   int
	byEngine map[string]*engStat

	count uint64
	sum   time.Duration
	max   time.Duration
	ring  []time.Duration
	next  int

	// holdEWMA tracks how long a worker-pool slot is typically held
	// (exponentially weighted moving average); admission control multiplies
	// it by the queue depth to estimate wait.
	holdEWMA time.Duration
}

func newMetrics() *metrics {
	return &metrics{byEngine: map[string]*engStat{}}
}

func (m *metrics) begin() {
	m.mu.Lock()
	m.active++
	m.mu.Unlock()
}

// end records one finished request: total duration (queue wait included)
// feeds the global latency stats; execDur, when positive, feeds the named
// engine's execution-latency ring. timeout implies error.
func (m *metrics) end(engine string, total, execDur time.Duration, isErr, isTimeout bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active--
	m.queries++
	if engine != "" {
		es := m.byEngine[engine]
		if es == nil {
			es = &engStat{}
			m.byEngine[engine] = es
		}
		es.count++
		if execDur > 0 {
			if len(es.ring) < engineSampleCap {
				es.ring = append(es.ring, execDur)
			} else {
				es.ring[es.next] = execDur
				es.next = (es.next + 1) % engineSampleCap
			}
		}
	}
	if isErr {
		m.errors++
	}
	if isTimeout {
		m.timeouts++
	}
	m.count++
	m.sum += total
	if total > m.max {
		m.max = total
	}
	if len(m.ring) < latencySampleCap {
		m.ring = append(m.ring, total)
	} else {
		m.ring[m.next] = total
		m.next = (m.next + 1) % latencySampleCap
	}
}

// reject counts one admission-control rejection.
func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// noteHold folds one observed slot-hold duration into the EWMA.
func (m *metrics) noteHold(d time.Duration) {
	m.mu.Lock()
	if m.holdEWMA == 0 {
		m.holdEWMA = d
	} else {
		// α = 1/8: smooth enough to ride out one odd query, fresh enough
		// to track load shifts within a few dozen requests.
		m.holdEWMA += (d - m.holdEWMA) / 8
	}
	m.mu.Unlock()
}

// avgHold returns the current slot-hold EWMA (0 until the first sample).
func (m *metrics) avgHold() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.holdEWMA
}

func (m *metrics) snapshot() (queries, errors, timeouts, rejected uint64, active int, byEngine map[string]uint64, engLat map[string]EngineLatency, lat LatencyStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byEngine = make(map[string]uint64, len(m.byEngine))
	engLat = make(map[string]EngineLatency, len(m.byEngine))
	for k, es := range m.byEngine {
		byEngine[k] = es.count
		el := EngineLatency{Count: es.count}
		if len(es.ring) > 0 {
			sorted := make([]time.Duration, len(es.ring))
			copy(sorted, es.ring)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			el.P50Ms = ms(Quantile(sorted, 0.50))
			el.P99Ms = ms(Quantile(sorted, 0.99))
		}
		engLat[k] = el
	}
	lat = LatencyStats{Count: m.count, MaxMs: ms(m.max)}
	if m.count > 0 {
		lat.MeanMs = ms(m.sum) / float64(m.count)
	}
	if len(m.ring) > 0 {
		sorted := make([]time.Duration, len(m.ring))
		copy(sorted, m.ring)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		lat.P50Ms = ms(Quantile(sorted, 0.50))
		lat.P90Ms = ms(Quantile(sorted, 0.90))
		lat.P99Ms = ms(Quantile(sorted, 0.99))
	}
	return m.queries, m.errors, m.timeouts, m.rejected, m.active, byEngine, engLat, lat
}

// Quantile returns the p-quantile of sorted durations (nearest-rank
// method). It is exported so the load generator (internal/bench) reports
// percentiles computed exactly like the server's own /stats — the two are
// meant to be compared side by side.
func Quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
