package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"

	"repro/internal/dict"
	"repro/internal/engine"
)

// jsonString encodes s as a JSON string without HTML escaping (every IRI
// rendering contains '<' and '>'; < soup helps nobody).
func jsonString(s string) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	return b[:len(b)-1], nil // Encode appends a newline; drop it
}

// Result encoders stream dictionary-encoded rows straight to the response
// writer: each id is decoded to its term rendering as it is written, so no
// [][]rdf.Term materialization of the full result ever exists (repro.Query
// materializes; the server must not — result sets can be large and many
// requests are in flight). Renderings are memoized per response because RDF
// results repeat terms heavily (a LUBM result column often has thousands of
// rows over a few hundred distinct terms).

// termRenderer decodes ids to term strings with per-response memoization.
type termRenderer struct {
	d    *dict.Dictionary
	memo map[uint32]string
}

func newTermRenderer(d *dict.Dictionary) *termRenderer {
	return &termRenderer{d: d, memo: make(map[uint32]string, 64)}
}

func (tr *termRenderer) render(id uint32) string {
	if s, ok := tr.memo[id]; ok {
		return s
	}
	s := tr.d.Decode(id).String()
	tr.memo[id] = s
	return s
}

// queryMeta is the non-row metadata included in JSON responses.
type queryMeta struct {
	Engine    string  // engine that executed the query
	Cache     string  // "hit" or "miss" on the plan cache
	TookMs    float64 // execution time, queue wait excluded
	Truncated bool    // result hit the server's row cap
}

// writeJSON streams the result as one JSON object:
//
//	{"vars":[...],"engine":"...","cache":"hit","took_ms":1.2,
//	 "count":N,"rows":[["<iri>","\"literal\""],...]}
//
// Rows hold the canonical N-Triples term renderings.
func writeJSON(w io.Writer, res *engine.Result, d *dict.Dictionary, meta queryMeta) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	tr := newTermRenderer(d)
	// Distinct JSON-escaped term strings are memoized separately from the
	// raw renderings so escaping is also paid once per distinct term.
	jsonMemo := make(map[uint32][]byte, 64)
	renderJSON := func(id uint32) ([]byte, error) {
		if b, ok := jsonMemo[id]; ok {
			return b, nil
		}
		b, err := jsonString(tr.render(id))
		if err != nil {
			return nil, err
		}
		jsonMemo[id] = b
		return b, nil
	}

	bw.WriteString(`{"vars":[`)
	for i, v := range res.Vars {
		if i > 0 {
			bw.WriteByte(',')
		}
		vb, err := jsonString(v)
		if err != nil {
			return err
		}
		bw.Write(vb)
	}
	bw.WriteString(`],"engine":`)
	eb, err := jsonString(meta.Engine)
	if err != nil {
		return err
	}
	bw.Write(eb)
	bw.WriteString(`,"cache":"`)
	bw.WriteString(meta.Cache)
	bw.WriteString(`","took_ms":`)
	tb, err := json.Marshal(meta.TookMs)
	if err != nil {
		return err
	}
	bw.Write(tb)
	if meta.Truncated {
		bw.WriteString(`,"truncated":true`)
	}
	bw.WriteString(`,"count":`)
	cb, err := json.Marshal(len(res.Rows))
	if err != nil {
		return err
	}
	bw.Write(cb)
	bw.WriteString(`,"rows":[`)
	for i, row := range res.Rows {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('[')
		for j, id := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			b, err := renderJSON(id)
			if err != nil {
				return err
			}
			bw.Write(b)
		}
		bw.WriteByte(']')
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeTSV streams the result as tab-separated values: a "?var" header line
// followed by one line per row of N-Triples term renderings (whose escaping
// already keeps tabs and newlines out of the raw text).
func writeTSV(w io.Writer, res *engine.Result, d *dict.Dictionary) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	tr := newTermRenderer(d)
	for i, v := range res.Vars {
		if i > 0 {
			bw.WriteByte('\t')
		}
		bw.WriteByte('?')
		bw.WriteString(v)
	}
	bw.WriteByte('\n')
	for _, row := range res.Rows {
		for j, id := range row {
			if j > 0 {
				bw.WriteByte('\t')
			}
			bw.WriteString(tr.render(id))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
