package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"

	"repro/internal/cluster"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/obs"
)

// jsonString encodes s as a JSON string without HTML escaping (every IRI
// rendering contains '<' and '>'; < soup helps nobody).
func jsonString(s string) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	b := buf.Bytes()
	return b[:len(b)-1], nil // Encode appends a newline; drop it
}

// Result encoders pull rows from the cursor and stream them straight to the
// response writer: each id is decoded to its term rendering as it is
// written, so neither the encoded result rows nor their decoded renderings
// are ever materialized — per-request memory is O(cursor batch), and the
// first byte reaches the client while the join is still enumerating.
// Renderings are memoized per response because RDF results repeat terms
// heavily (a LUBM result column often has thousands of rows over a few
// hundred distinct terms).

// termRenderer decodes ids to term strings with per-response memoization.
type termRenderer struct {
	d    *dict.Dictionary
	memo map[uint32]string
}

func newTermRenderer(d *dict.Dictionary) *termRenderer {
	return &termRenderer{d: d, memo: make(map[uint32]string, 64)}
}

func (tr *termRenderer) render(id uint32) string {
	if s, ok := tr.memo[id]; ok {
		return s
	}
	s := tr.d.Decode(id).String()
	tr.memo[id] = s
	return s
}

// queryMeta is the non-row metadata included in JSON responses.
type queryMeta struct {
	QueryID string // per-request id, also in the X-Query-ID header
	Engine  string // engine that executed the query
	Cache   string // "hit" or "miss" on the plan cache
}

// encodeResult is what an encoder reports back to the handler: how many
// rows went out, whether the row cap truncated the stream, and the error
// that ended it — nil for a complete result, the cursor's error (deadline,
// cancellation, execution failure) or the write error otherwise. Once rows
// have been streamed the HTTP status is already committed, so mid-stream
// errors are reported in-band (a trailing "error" field in JSON, an HTTP
// trailer for both formats) and counted in /stats by the caller.
type encodeResult struct {
	rows      int
	truncated bool
	err       error
}

// writeJSON streams the result as one JSON object:
//
//	{"vars":[...],"id":"q7","engine":"...","cache":"hit",
//	 "rows":[["<iri>","\"literal\""],...],
//	 "count":N,"truncated":true,"took_ms":1.2,"error":"...",
//	 "partial":[{"shard":1,"mode":"lost"}],"trace":{...}}
//
// Rows hold the canonical N-Triples term renderings. count, truncated, and
// took_ms trail the rows because they are only known once the stream ends;
// error appears only when the stream ended abnormally. partial, when the
// partial callback is non-nil and reports missing shards (cluster serving
// under degradation), lists the shards whose rows may be incomplete.
// trace, when the trace callback is non-nil (?explain=1), is the query's
// span tree — the callback runs after the last row, once every stage has
// finished, and receives the encoded row count.
func writeJSON(w io.Writer, vars []string, cur engine.Cursor, d *dict.Dictionary, meta queryMeta, tookMs func() float64, partial func() []cluster.PartialShard, trace func(rows int) *obs.TraceSnapshot) encodeResult {
	bw := bufio.NewWriterSize(w, 32<<10)
	tr := newTermRenderer(d)
	// Distinct JSON-escaped term strings are memoized separately from the
	// raw renderings so escaping is also paid once per distinct term.
	jsonMemo := make(map[uint32][]byte, 64)
	renderJSON := func(id uint32) ([]byte, error) {
		if b, ok := jsonMemo[id]; ok {
			return b, nil
		}
		b, err := jsonString(tr.render(id))
		if err != nil {
			return nil, err
		}
		jsonMemo[id] = b
		return b, nil
	}

	bw.WriteString(`{"vars":[`)
	for i, v := range vars {
		if i > 0 {
			bw.WriteByte(',')
		}
		vb, err := jsonString(v)
		if err != nil {
			return encodeResult{err: err}
		}
		bw.Write(vb)
	}
	bw.WriteString(`]`)
	if meta.QueryID != "" {
		bw.WriteString(`,"id":"`)
		bw.WriteString(meta.QueryID) // NextQueryID emits [a-z0-9]+ only
		bw.WriteString(`"`)
	}
	bw.WriteString(`,"engine":`)
	eb, err := jsonString(meta.Engine)
	if err != nil {
		return encodeResult{err: err}
	}
	bw.Write(eb)
	bw.WriteString(`,"cache":"`)
	bw.WriteString(meta.Cache)
	bw.WriteString(`","rows":[`)

	res := encodeResult{}
	for {
		row, err := cur.Next()
		if err == io.EOF {
			res.truncated = cur.Truncated()
			break
		}
		if err != nil {
			res.err = err
			break
		}
		if res.rows > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('[')
		for j, id := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			b, err := renderJSON(id)
			if err != nil {
				res.err = err
				return res
			}
			bw.Write(b)
		}
		bw.WriteByte(']')
		res.rows++
	}

	bw.WriteString(`],"count":`)
	cb, _ := json.Marshal(res.rows)
	bw.Write(cb)
	if res.truncated {
		bw.WriteString(`,"truncated":true`)
	}
	bw.WriteString(`,"took_ms":`)
	tb, _ := json.Marshal(tookMs())
	bw.Write(tb)
	if res.err != nil {
		bw.WriteString(`,"error":`)
		if msg, jerr := jsonString(res.err.Error()); jerr == nil {
			bw.Write(msg)
		} else {
			bw.WriteString(`"encoding error"`)
		}
	}
	if partial != nil {
		if miss := partial(); len(miss) > 0 {
			if pb, perr := json.Marshal(miss); perr == nil {
				bw.WriteString(`,"partial":`)
				bw.Write(pb)
			}
		}
	}
	if trace != nil {
		if snap := trace(res.rows); snap != nil {
			if sb, serr := json.Marshal(snap); serr == nil {
				bw.WriteString(`,"trace":`)
				bw.Write(sb)
			}
		}
	}
	bw.WriteString("}\n")
	if ferr := bw.Flush(); ferr != nil && res.err == nil {
		res.err = ferr
	}
	return res
}

// writeTSV streams the result as tab-separated values: a "?var" header line
// followed by one line per row of N-Triples term renderings (whose escaping
// already keeps tabs and newlines out of the raw text). A mid-stream error
// simply ends the body; the X-Error HTTP trailer carries the cause.
func writeTSV(w io.Writer, vars []string, cur engine.Cursor, d *dict.Dictionary) encodeResult {
	bw := bufio.NewWriterSize(w, 32<<10)
	tr := newTermRenderer(d)
	for i, v := range vars {
		if i > 0 {
			bw.WriteByte('\t')
		}
		bw.WriteByte('?')
		bw.WriteString(v)
	}
	bw.WriteByte('\n')
	res := encodeResult{}
	for {
		row, err := cur.Next()
		if err == io.EOF {
			res.truncated = cur.Truncated()
			break
		}
		if err != nil {
			res.err = err
			break
		}
		for j, id := range row {
			if j > 0 {
				bw.WriteByte('\t')
			}
			bw.WriteString(tr.render(id))
		}
		bw.WriteByte('\n')
		res.rows++
	}
	if ferr := bw.Flush(); ferr != nil && res.err == nil {
		res.err = ferr
	}
	return res
}
