package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/store"
)

// newDurableServer opens a durable store over a fresh data directory seeded
// with smallStore and serves it via Config.Live/Config.Durable — the
// hand-over path rdfserved uses with -data-dir.
func newDurableServer(t *testing.T) (*durable.Store, *Server, *httptest.Server) {
	t.Helper()
	d, err := durable.Open(t.TempDir(), func() (*store.Store, error) { return smallStore(), nil }, durable.Options{})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	s, err := New(Config{Live: d.Live(), Durable: d})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return d, s, ts
}

func TestDurableServerStats(t *testing.T) {
	_, _, ts := newDurableServer(t)

	// The durability section appears only after the store is durable, and
	// starts out clean: nothing replayed, empty WAL, one mapped segment.
	code, body := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d, body %s", code, body)
	}
	var st struct {
		Durability *DurabilityStats `json:"durability"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if st.Durability == nil {
		t.Fatal("durable server reports no durability section")
	}
	d := st.Durability
	if d.WALBytes != 0 || d.ReplayedRecords != 0 {
		t.Fatalf("fresh store: wal_bytes=%d replayed=%d, want 0/0", d.WALBytes, d.ReplayedRecords)
	}
	if d.SegmentBytes == 0 || d.SegmentsMapped != 1 {
		t.Fatalf("segment_bytes=%d segments_mapped=%d, want >0/1", d.SegmentBytes, d.SegmentsMapped)
	}
	if d.FsyncPolicy != "always" {
		t.Fatalf("fsync_policy = %q, want always (the zero-value default)", d.FsyncPolicy)
	}

	// An update grows the WAL; compaction persists a segment and truncates
	// it back to zero.
	patch := "<http://ex/dave> <http://ex/knows> <http://ex/alice> .\n"
	resp, err := http.Post(ts.URL+"/update", "text/plain", strings.NewReader(patch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/update = %d", resp.StatusCode)
	}
	code, body = get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatal(body)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability.WALBytes == 0 || st.Durability.WALRecords != 1 {
		t.Fatalf("after update: wal_bytes=%d wal_records=%d, want >0/1",
			st.Durability.WALBytes, st.Durability.WALRecords)
	}
	resp, err = http.Post(ts.URL+"/compact", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/compact = %d", resp.StatusCode)
	}
	code, body = get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatal(body)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Durability.WALBytes != 0 {
		t.Fatalf("after compact: wal_bytes=%d, want 0 (truncated)", st.Durability.WALBytes)
	}
	if st.Durability.CompactionsPersisted != 1 {
		t.Fatalf("compactions_persisted = %d, want 1", st.Durability.CompactionsPersisted)
	}
}

func TestDurableServerHealthz(t *testing.T) {
	_, _, ts := newDurableServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var h struct {
		Status    string `json:"status"`
		Durable   *bool  `json:"durable"`
		WALReplay *bool  `json:"wal_replay"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Durable == nil || !*h.Durable {
		t.Fatalf("healthz = %s, want durable ok", body)
	}
	if h.WALReplay == nil || *h.WALReplay {
		t.Fatalf("healthz = %s, want wal_replay false on a running server", body)
	}
}

// TestInMemoryServerOmitsDurability pins the omitempty contract: servers
// without Config.Durable must not grow a durability section.
func TestInMemoryServerOmitsDurability(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	_, body := get(t, ts.URL+"/stats")
	if strings.Contains(body, "durability") {
		t.Fatalf("in-memory /stats carries a durability section: %s", body)
	}
	_, body = get(t, ts.URL+"/healthz")
	if strings.Contains(body, "wal_replay") {
		t.Fatalf("in-memory /healthz carries wal_replay: %s", body)
	}
}

// TestConfigLiveServed verifies the hand-over path serves the provided live
// store itself — updates applied through the server are visible through the
// original store handle (they would not be if New wrapped a copy).
func TestConfigLiveServed(t *testing.T) {
	d, s, ts := newDurableServer(t)
	before := d.Live().NumTriples()
	patch := "<http://ex/erin> <http://ex/knows> <http://ex/alice> .\n"
	resp, err := http.Post(ts.URL+"/update", "text/plain", strings.NewReader(patch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := d.Live().NumTriples(); got != before+1 {
		t.Fatalf("durable store saw %d triples after /update, want %d", got, before+1)
	}
	if s.Live() != d.Live() {
		t.Fatal("server wrapped a different live store than Config.Live")
	}
}
