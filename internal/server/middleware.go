package server

// middleware.go: per-request panic recovery. A panic in any handler — a
// bug in an engine's enumeration, a malformed plan, a nil somewhere in the
// encode path — must cost one request, not the process: the middleware
// recovers it, logs the stack with the query ID, bumps the panics counter
// (/stats "panics", /metrics rdf_panics_total), and answers 500 when the
// response is still uncommitted. http.ErrAbortHandler is re-raised: it is
// net/http's own sanctioned way to abort a response, not a bug.

import (
	"fmt"
	"net/http"
	"runtime/debug"
)

// recoverPanics wraps next with per-request panic recovery.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &committedWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.stats.panicked()
			qid := w.Header().Get("X-Query-ID")
			s.log.Error("panic serving request (recovered)",
				"path", r.URL.Path, "query_id", qid,
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			if !cw.committed {
				if qid != "" {
					httpError(cw, http.StatusInternalServerError, "internal error (query %s)", qid)
				} else {
					httpError(cw, http.StatusInternalServerError, "internal error")
				}
			}
			// Committed responses just end truncated; for /query the
			// missing JSON tail / absent trailers already tell the client
			// the stream broke.
		}()
		next.ServeHTTP(cw, r)
	})
}

// committedWriter tracks whether the response status has been committed,
// so the recovery path knows whether a 500 can still be written. It
// forwards Flush (the /shard/query streamer needs it through the wrapper).
type committedWriter struct {
	http.ResponseWriter
	committed bool
}

func (c *committedWriter) WriteHeader(code int) {
	c.committed = true
	c.ResponseWriter.WriteHeader(code)
}

func (c *committedWriter) Write(b []byte) (int, error) {
	c.committed = true
	return c.ResponseWriter.Write(b)
}

func (c *committedWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
