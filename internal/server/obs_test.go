package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lubm"
	"repro/internal/obs"
	"repro/internal/store"
)

// lubmStore lazily builds one scale-1 LUBM store shared by the sharded
// observability tests (the store is read-only; each test partitions its own
// server over it).
var (
	lubmOnce  sync.Once
	lubmCache *store.Store
)

func lubmScale1() *store.Store {
	lubmOnce.Do(func() {
		b := store.NewBuilder()
		lubm.GenerateTo(lubm.Config{Universities: 1, Seed: 0}, b.Add)
		lubmCache = b.Build()
	})
	return lubmCache
}

// explainBody is the ?explain=1 JSON response shape the tests care about.
type explainBody struct {
	ID    string             `json:"id"`
	Count int                `json:"count"`
	Trace *obs.TraceSnapshot `json:"trace"`
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	if code, body := get(t, queryURL(ts.URL, q, nil)); code != http.StatusOK {
		t.Fatalf("query status = %d, body %s", code, body)
	}

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := obs.CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE rdf_build_info gauge",
		"rdf_build_info{",
		"rdf_queries_total 1",
		"rdf_query_latency_seconds_bucket{",
		"rdf_query_latency_seconds_count 1",
		"rdf_engine_exec_latency_seconds_bucket{engine=\"emptyheaded\"",
		"rdf_plan_cache_misses_total 1",
		"rdf_traced_queries 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatalf("POST /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", resp.StatusCode)
	}
}

// TestExplainTraceSharded is the issue's acceptance query: ?explain=1 on a
// 4-shard LUBM query must return results plus a span tree that names the
// chosen engine class, carries the scatter plan with its pruned-shard set,
// and nests per-shard drain spans under the execute span.
func TestExplainTraceSharded(t *testing.T) {
	_, ts := newTestServer(t, lubmScale1(), Config{Shards: 4, MaxRows: -1})
	code, body := get(t, queryURL(ts.URL, lubm.Query(2, 1), map[string]string{"explain": "1"}))
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var out explainBody
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Count == 0 {
		t.Fatal("explain=1 returned no rows; it must execute the query")
	}
	if out.Trace == nil {
		t.Fatal("no trace in explain=1 response")
	}
	if out.Trace.QueryID == "" || out.Trace.QueryID != out.ID {
		t.Fatalf("trace query_id %q does not match response id %q", out.Trace.QueryID, out.ID)
	}
	root := &out.Trace.Root
	if root.Name != "query" {
		t.Fatalf("root span = %q, want query", root.Name)
	}
	for _, name := range []string{"parse", "admission_wait", "plan", "execute", "encode"} {
		if root.Find(name) == nil {
			t.Fatalf("span %q missing from trace:\n%s", name, body)
		}
	}

	planSp := root.Find("plan")
	if cls, ok := planSp.Attrs["engine_class"].(string); !ok || cls == "" {
		t.Fatalf("plan span does not name the chosen engine class: %v", planSp.Attrs)
	}
	hasCost := false
	for k := range planSp.Attrs {
		if strings.HasPrefix(k, "cost_") {
			hasCost = true
		}
	}
	if !hasCost {
		t.Fatalf("plan span carries no per-class cost estimates: %v", planSp.Attrs)
	}

	exec := root.Find("execute")
	if exec.Rows != int64(out.Count) {
		t.Fatalf("execute span rows = %d, want %d", exec.Rows, out.Count)
	}
	if got := exec.Attrs["shards_total"]; got != float64(4) {
		t.Fatalf("shards_total = %v, want 4", got)
	}
	if kind, ok := exec.Attrs["scatter_plan"].(string); !ok || kind == "" {
		t.Fatalf("execute span has no scatter_plan attr: %v", exec.Attrs)
	}
	pruned, ok := exec.Attrs["pruned_shards"].([]any)
	if !ok {
		t.Fatalf("execute span has no pruned_shards list: %v", exec.Attrs)
	}
	if len(pruned) == 0 {
		t.Fatalf("no shards pruned on 4-shard LUBM q2; statistics pruning regressed: %v", exec.Attrs)
	}

	drain := exec.Find("shard_drain")
	if drain == nil {
		t.Fatalf("no shard_drain span nested under execute:\n%s", body)
	}
	if _, ok := drain.Attrs["shard"]; !ok {
		t.Fatalf("shard_drain span does not name its shard: %v", drain.Attrs)
	}
	if drain.StartUs < exec.StartUs {
		t.Fatalf("shard_drain starts (%v µs) before its execute parent (%v µs)", drain.StartUs, exec.StartUs)
	}

	// The trace also lands in the ring, and the sharded histograms appear in
	// the exposition now that a scatter plan has run.
	code, mbody := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := obs.CheckExposition(strings.NewReader(mbody)); err != nil {
		t.Fatalf("invalid sharded exposition: %v", err)
	}
	for _, want := range []string{
		"rdf_shards 4",
		"rdf_merge_batch_rows_bucket{",
		"rdf_shards_pruned_per_query_bucket{",
		"rdf_shard_rows_delivered_total{shard=\"0\"}",
	} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("sharded /metrics missing %q", want)
		}
	}
}

// TestExplainPlanExecutesNothing: ?explain=plan reports the planner's
// decisions — engine class, per-class costs, the compiled scatter plan —
// without opening a cursor: no rows may leave any shard.
func TestExplainPlanExecutesNothing(t *testing.T) {
	s, ts := newTestServer(t, lubmScale1(), Config{Shards: 4, MaxRows: -1})
	code, body := get(t, queryURL(ts.URL, lubm.Query(2, 1), map[string]string{"explain": "plan"}))
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var out struct {
		QueryID string             `json:"query_id"`
		Engine  string             `json:"engine"`
		Cache   string             `json:"cache"`
		Class   string             `json:"engine_class"`
		Costs   map[string]float64 `json:"costs"`
		Scatter *struct {
			Kind   string `json:"kind"`
			Shards int    `json:"shards"`
			Groups []struct {
				Root   string `json:"root"`
				Shards []int  `json:"shards"`
				Pruned []int  `json:"pruned"`
			} `json:"groups"`
		} `json:"scatter"`
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if out.QueryID == "" || out.Cache != "miss" {
		t.Fatalf("meta = %+v", out)
	}
	if out.Class == "" || len(out.Costs) == 0 {
		t.Fatalf("no cost-model decision in explain=plan: %+v", out)
	}
	if out.Scatter == nil || out.Scatter.Shards != 4 || len(out.Scatter.Groups) == 0 {
		t.Fatalf("no scatter plan in explain=plan: %+v", out)
	}
	if strings.Contains(body, `"rows"`) {
		t.Fatalf("explain=plan response carries rows: %s", body)
	}

	st := s.Stats()
	if st.Sharding == nil {
		t.Fatal("no sharding stats")
	}
	for i, n := range st.Sharding.MergeRowsDelivered {
		if n != 0 {
			t.Fatalf("shard %d delivered %d rows during explain=plan; nothing may execute", i, n)
		}
	}

	// A second explain of the same query must hit the plan cache.
	code, body = get(t, queryURL(ts.URL, lubm.Query(2, 1), map[string]string{"explain": "plan"}))
	if code != http.StatusOK || !strings.Contains(body, `"cache":"hit"`) {
		t.Fatalf("second explain=plan not a cache hit: %d %s", code, body)
	}
}

func TestDebugQueriesRing(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	first := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	second := `SELECT ?who WHERE { <http://ex/bob> <http://ex/knows> ?who }`
	for _, q := range []string{first, second} {
		if code, body := get(t, queryURL(ts.URL, q, nil)); code != http.StatusOK {
			t.Fatalf("query status = %d, body %s", code, body)
		}
	}

	code, body := get(t, ts.URL+"/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries status = %d", code)
	}
	var out struct {
		Count  int                  `json:"count"`
		Traces []*obs.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Count != 2 || len(out.Traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2: %s", out.Count, body)
	}
	if out.Traces[0].Query != second || out.Traces[1].Query != first {
		t.Fatalf("traces not newest-first: [%q, %q]", out.Traces[0].Query, out.Traces[1].Query)
	}
	if out.Traces[0].Root.Find("execute") == nil {
		t.Fatalf("ring trace has no execute span: %s", body)
	}

	code, body = get(t, ts.URL+"/debug/queries?n=1")
	if code != http.StatusOK || !strings.Contains(body, `"count":1`) {
		t.Fatalf("?n=1 = %d %s, want one trace", code, body)
	}
	if code, _ := get(t, ts.URL+"/debug/queries?n=-1"); code != http.StatusBadRequest {
		t.Fatalf("?n=-1 status = %d, want 400", code)
	}
}

// TestTraceSampling: TraceSample < 0 disables capture for plain queries,
// but ?explain=1 still traces.
func TestTraceSampling(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{TraceSample: -1})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	if code, body := get(t, queryURL(ts.URL, q, nil)); code != http.StatusOK {
		t.Fatalf("query status = %d, body %s", code, body)
	}
	if _, body := get(t, ts.URL+"/debug/queries"); !strings.Contains(body, `"count":0`) {
		t.Fatalf("TraceSample -1 still captured a trace: %s", body)
	}
	code, body := get(t, queryURL(ts.URL, q, map[string]string{"explain": "1"}))
	if code != http.StatusOK || !strings.Contains(body, `"trace"`) {
		t.Fatalf("explain=1 under TraceSample -1 returned no trace: %d %s", code, body)
	}
	if _, body := get(t, ts.URL+"/debug/queries"); !strings.Contains(body, `"count":1`) {
		t.Fatalf("explain=1 trace not retained in ring: %s", body)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil))
	_, ts := newTestServer(t, smallStore(), Config{Logger: logger, SlowQuery: time.Nanosecond})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	code, body := get(t, queryURL(ts.URL, q, nil))
	if code != http.StatusOK {
		t.Fatalf("query status = %d, body %s", code, body)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow query") {
		t.Fatalf("no slow-query record at 1ns threshold: %q", logged)
	}
	var rec struct {
		Level   string  `json:"level"`
		QueryID string  `json:"query_id"`
		Engine  string  `json:"engine"`
		TotalMs float64 `json:"total_ms"`
		Rows    int64   `json:"rows"`
		Query   string  `json:"query"`
	}
	line := logged[:strings.IndexByte(logged, '\n')]
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query record is not JSON: %v in %q", err, line)
	}
	if rec.Level != "WARN" || rec.QueryID == "" || rec.Engine == "" || rec.TotalMs <= 0 || rec.Rows != 1 || rec.Query != q {
		t.Fatalf("incomplete slow-query record: %+v", rec)
	}
}

// lockedWriter serializes handler writes against the test's reads.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestStatsPercentilesFromHistogram: /stats latency percentiles are
// interpolated from the same histogram /metrics exports, so after a few
// queries both surfaces must report a consistent, populated distribution.
func TestStatsPercentilesFromHistogram(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	for i := 0; i < 3; i++ {
		if code, body := get(t, queryURL(ts.URL, q, nil)); code != http.StatusOK {
			t.Fatalf("query status = %d, body %s", code, body)
		}
	}
	code, body := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	lat := st.Latency
	if lat.Count != 3 {
		t.Fatalf("latency count = %d, want 3", lat.Count)
	}
	if lat.P50Ms <= 0 || lat.P90Ms < lat.P50Ms || lat.P99Ms < lat.P90Ms || lat.MaxMs <= 0 {
		t.Fatalf("implausible percentile ladder: %+v", lat)
	}
	el, ok := st.EngineLatency["emptyheaded"]
	if !ok || el.Count != 3 || el.P50Ms <= 0 || el.P99Ms < el.P50Ms {
		t.Fatalf("implausible engine latency: %+v", st.EngineLatency)
	}
}

func TestQueryIDHeader(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	resp, err := http.Get(queryURL(ts.URL, q, nil))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	qid := resp.Header.Get("X-Query-ID")
	if qid == "" {
		t.Fatal("no X-Query-ID response header")
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.ID != qid {
		t.Fatalf("body id %q != X-Query-ID header %q", out.ID, qid)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var out struct {
		Build *obs.BuildInfo `json:"build"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if out.Build == nil || out.Build.GoVersion == "" {
		t.Fatalf("/healthz has no build info: %s", body)
	}
}
