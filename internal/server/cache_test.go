package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	a, b, d := &preparedQuery{}, &preparedQuery{}, &preparedQuery{}
	c.add("a", a)
	c.add("b", b)
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.add("d", d) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (a was refreshed)")
	}
	if got, ok := c.get("a"); !ok || got != a {
		t.Fatal("a lost")
	}
	if got, ok := c.get("d"); !ok || got != d {
		t.Fatal("d lost")
	}
	st := c.stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2 evictions 1", st)
	}
	// hits: a, a, d = 3; misses: a(first get? no—get("a") after add is a hit)...
	// Accounting: get(a)=hit, get(b)=miss, get(a)=hit, get(d)=hit.
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 hits 1 miss", st)
	}
}

func TestPlanCacheUpdateExisting(t *testing.T) {
	c := newPlanCache(4)
	p1, p2 := &preparedQuery{}, &preparedQuery{}
	c.add("k", p1)
	c.add("k", p2)
	if got, _ := c.get("k"); got != p2 {
		t.Fatal("re-add did not replace value")
	}
	if st := c.stats(); st.Size != 1 {
		t.Fatalf("size = %d, want 1", st.Size)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := newPlanCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				if _, ok := c.get(key); !ok {
					c.add(key, &preparedQuery{})
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.stats()
	if st.Size > 16 {
		t.Fatalf("size %d exceeds capacity", st.Size)
	}
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
}
