package server

// obs.go is the serving layer's observability surface: per-request query
// IDs (echoed in the X-Query-ID response header), the span-tree trace
// captured around each query's pipeline stages, the ring of recent traces
// served at /debug/queries, the slow-query structured log, and the
// plan-only EXPLAIN response. The exposition-format /metrics endpoint
// lives in prom.go.

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/shard"
)

// traceRingSize is how many recent query traces /debug/queries retains.
const traceRingSize = 128

// maxTracedQueryLen bounds the raw query text stored on a trace; the ring
// holds 128 traces and a pathological client must not turn it into a
// megabyte archive.
const maxTracedQueryLen = 2048

// traceQuery returns the query text bounded for trace storage.
func traceQuery(text string) string {
	if len(text) > maxTracedQueryLen {
		return text[:maxTracedQueryLen] + "…"
	}
	return text
}

// sampled reports whether the next query should be traced: every query at
// TraceSample 1 (the default — span capture is nil-checks and a handful of
// small allocations per request), every Nth at N, never at < 0. ?explain=1
// requests are always traced regardless.
func (s *Server) sampled() bool {
	n := s.cfg.TraceSample
	if n < 0 {
		return false
	}
	if n <= 1 {
		return true
	}
	return s.traceSeq.Add(1)%uint64(n) == 0
}

// slowLog emits one structured slow-query record from a finished trace.
func (s *Server) slowLog(snap *obs.TraceSnapshot, total time.Duration, rows int64, isErr bool) {
	if snap == nil {
		return
	}
	s.log.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
		slog.String("query_id", snap.QueryID),
		slog.String("engine", snap.Engine),
		slog.Float64("total_ms", ms(total)),
		slog.Int64("rows", rows),
		slog.Bool("error", isErr),
		slog.String("query", snap.Query),
	)
}

// handleDebugQueries serves the recent-trace ring, newest first:
// {"count":N,"traces":[TraceSnapshot,...]}. ?n= bounds how many come back.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	traces := s.traces.Snapshot()
	if nv := r.FormValue("n"); nv != "" {
		n, err := strconv.Atoi(nv)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q (want a non-negative integer)", nv)
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"count":  len(traces),
		"traces": traces,
	})
}

// explainResponse is the ?explain=plan payload: everything the planner
// decided, nothing executed.
type explainResponse struct {
	QueryID string `json:"query_id"`
	Engine  string `json:"engine"`
	Cache   string `json:"cache"`
	// Class is the cost model's chosen engine class; Costs holds the
	// model's per-class estimates it chose from. Both are empty when
	// profiling failed (the query still plans and runs).
	Class string             `json:"engine_class,omitempty"`
	Costs map[string]float64 `json:"costs,omitempty"`
	// Scatter is the shard engine's compiled plan summary; nil when the
	// server runs unsharded.
	Scatter *shard.ExplainPlan `json:"scatter,omitempty"`
	// Plan reports whether the engine separates compilation from execution
	// and cached a compiled plan ("compiled"), or plans internally per
	// execution ("per-execution").
	Plan string `json:"plan"`
}

// explainPlan answers ?explain=plan: resolve the plan-cache entry
// (compiling on a miss — planning is the thing being explained) and report
// the decisions without acquiring pool slots or opening any cursor.
func (s *Server) explainPlan(w http.ResponseWriter, qid, engineName string, le *live.Engine, q *query.BGP) error {
	pq, hit, err := s.prepare(engineName, le, q)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "planning: %v", err)
		return err
	}
	resp := explainResponse{
		QueryID: qid,
		Engine:  engineName,
		Cache:   "miss",
		Class:   pq.className(),
		Costs:   pq.costs,
		Plan:    "per-execution",
	}
	if hit {
		resp.Cache = "hit"
	}
	if pq.plan != nil {
		resp.Plan = "compiled"
	}
	if inner, ierr := le.Inner(); ierr == nil {
		if se, ok := inner.(*shard.Engine); ok {
			if ep, eerr := se.Explain(pq.bgp); eerr == nil {
				resp.Scatter = ep
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
	return nil
}

// className renders the cost model's choice, empty when profiling failed.
func (pq *preparedQuery) className() string {
	if !pq.profiled {
		return ""
	}
	return pq.class.String()
}

// annotatePlanSpan records the planner's decisions on the plan span.
func annotatePlanSpan(sp *obs.Span, pq *preparedQuery, hit bool) {
	if sp == nil {
		return
	}
	if hit {
		sp.SetAttr("cache", "hit")
	} else {
		sp.SetAttr("cache", "miss")
	}
	if pq.profiled {
		sp.SetAttr("engine_class", pq.class.String())
		for _, c := range plan.Classes() {
			sp.SetAttr("cost_"+c.String(), pq.costs[c.String()])
		}
	}
}

// countingCursor wraps the response cursor so the execute span counts the
// rows actually delivered to the encoder and stamps time-to-first-row. The
// span is never nil here (the wrapper is only installed on traced
// requests), but AddRows is nil-safe regardless.
type countingCursor struct {
	engine.Cursor
	span *obs.Span
}

func (c *countingCursor) Next() ([]uint32, error) {
	row, err := c.Cursor.Next()
	if err == nil {
		c.span.AddRows(1)
	}
	return row, err
}
