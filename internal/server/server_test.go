package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lubm"
	"repro/internal/rdf"
	"repro/internal/store"
)

// smallStore builds a tiny dataset:
//
//	alice knows bob, bob knows carol, alice age "30"
func smallStore() *store.Store {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }
	b := store.NewBuilder()
	b.Add(rdf.Triple{S: iri("alice"), P: iri("knows"), O: iri("bob")})
	b.Add(rdf.Triple{S: iri("bob"), P: iri("knows"), O: iri("carol")})
	b.Add(rdf.Triple{S: iri("alice"), P: iri("age"), O: rdf.NewLiteral("30")})
	return b.Build()
}

// denseStore builds a complete digraph over n vertices on one predicate, so
// the triangle query emits ~n^3 rows — slow enough that a short request
// timeout always fires first.
func denseStore(n int) *store.Store {
	b := store.NewBuilder()
	p := rdf.NewIRI("http://ex/p")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://ex/n%d", i)),
				P: p,
				O: rdf.NewIRI(fmt.Sprintf("http://ex/n%d", j)),
			})
		}
	}
	return b.Build()
}

const triangleQuery = `SELECT ?x ?y ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z . ?x <http://ex/p> ?z }`

func newTestServer(t *testing.T, st *store.Store, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Store = st
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, rawURL string) (int, string) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

func queryURL(base, q string, extra map[string]string) string {
	params := url.Values{"query": {q}}
	for k, v := range extra {
		params.Set(k, v)
	}
	return base + "/query?" + params.Encode()
}

func TestQuerySuccessJSON(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	code, body := get(t, queryURL(ts.URL, q, nil))
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var out struct {
		Vars   []string   `json:"vars"`
		Engine string     `json:"engine"`
		Cache  string     `json:"cache"`
		Count  int        `json:"count"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if out.Count != 1 || len(out.Rows) != 1 || out.Rows[0][0] != "<http://ex/bob>" {
		t.Fatalf("unexpected result: %+v", out)
	}
	if out.Vars[0] != "who" {
		t.Fatalf("vars = %v, want original name 'who'", out.Vars)
	}
	if out.Engine != "emptyheaded" || out.Cache != "miss" {
		t.Fatalf("meta = %+v", out)
	}
}

func TestQuerySuccessTSV(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?s ?o WHERE { ?s <http://ex/knows> ?o }`
	code, body := get(t, queryURL(ts.URL, q, map[string]string{"format": "tsv"}))
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if lines[0] != "?s\t?o" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("want 2 data rows, got %d: %q", len(lines)-1, body)
	}
}

func TestQueryPostBody(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	// Standard SPARQL clients send a charset parameter; both forms must work.
	for _, ct := range []string{"application/sparql-query", "application/sparql-query; charset=utf-8"} {
		resp, err := http.Post(ts.URL+"/query", ct, strings.NewReader(q))
		if err != nil {
			t.Fatalf("POST (%s): %v", ct, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST (%s): status = %d, body %s", ct, resp.StatusCode, body)
		}
	}
}

func TestAcceptHeaderTSV(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	req, _ := http.NewRequest(http.MethodGet, queryURL(ts.URL, q, nil), nil)
	req.Header.Set("Accept", "text/tab-separated-values;q=0.9, */*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/tab-separated-values") {
		t.Fatalf("Content-Type = %q, want TSV for Accept with params", ct)
	}
}

func TestParseErrorIs400(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	code, body := get(t, queryURL(ts.URL, `SELECT ?x WHERE { broken`, nil))
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", code, body)
	}
	if !strings.Contains(body, "error") {
		t.Fatalf("body = %q, want JSON error", body)
	}
}

func TestMissingQueryIs400(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	code, _ := get(t, ts.URL+"/query")
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

func TestUnknownEngineIs400(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	code, body := get(t, queryURL(ts.URL, q, map[string]string{"engine": "postgres"}))
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", code, body)
	}
	if !strings.Contains(body, "unknown engine") {
		t.Fatalf("body = %q, want unknown engine error", body)
	}
}

func TestBadTimeoutIs400(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	code, _ := get(t, queryURL(ts.URL, q, map[string]string{"timeout": "yesterday"}))
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

// TestSlowQueryTimesOutMidStream drives the acceptance criterion "a slow
// query is cancelled by the request timeout" under streaming semantics: the
// triangle query over a dense graph would emit ~40M rows, so its first rows
// stream out (status 200) long before the 25ms deadline — which then aborts
// the join mid-recursion. The response must end promptly with an in-band
// error (trailing "error" field) instead of running for seconds, and the
// timeout must be counted.
func TestSlowQueryTimesOutMidStream(t *testing.T) {
	srv, ts := newTestServer(t, denseStore(350), Config{})
	start := time.Now()
	code, body := get(t, queryURL(ts.URL, triangleQuery, map[string]string{"timeout": "25ms"}))
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (rows stream before the deadline); body %.200s", code, body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("response took %v — cancellation did not interrupt the join", elapsed)
	}
	if !strings.Contains(body, `"error":`) || !strings.Contains(body, "deadline") {
		t.Fatalf("streamed body does not carry the mid-stream deadline error (tail: %s)", body[len(body)-min(len(body), 300):])
	}
	// The body must still be one well-formed JSON object (rows then
	// trailing count/took_ms/error fields).
	var out struct {
		Count int    `json:"count"`
		Error string `json:"error"`
		Rows  [][]string
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("mid-stream-error body is not valid JSON: %v", err)
	}
	if out.Error == "" {
		t.Fatalf("no error field in %0.100s", body)
	}
	if st := srv.Stats(); st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// TestTimeoutBeforeFirstRowIs504: when the deadline has already passed
// before any row is produced, the failure still maps to a proper HTTP
// status (the handler pulls the first row before committing headers).
func TestTimeoutBeforeFirstRowIs504(t *testing.T) {
	srv, ts := newTestServer(t, denseStore(30), Config{})
	code, body := get(t, queryURL(ts.URL, triangleQuery, map[string]string{"timeout": "1ns"}))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %.200s", code, body)
	}
	if st := srv.Stats(); st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// TestPlanCacheHit drives the acceptance criterion "a repeated query
// demonstrably hits the plan cache (asserted via /stats)" — including that
// an α-renamed variant of the query shares the same cache entry.
func TestPlanCacheHit(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q1 := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	q2 := `SELECT ?w WHERE { <http://ex/alice> <http://ex/knows> ?w }` // α-renamed
	for _, q := range []string{q1, q1, q2} {
		if code, body := get(t, queryURL(ts.URL, q, nil)); code != http.StatusOK {
			t.Fatalf("status = %d, body %s", code, body)
		}
	}
	code, body := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /stats JSON %q: %v", body, err)
	}
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 2 {
		t.Fatalf("plan cache hits=%d misses=%d, want 2/1; stats %s", st.PlanCache.Hits, st.PlanCache.Misses, body)
	}
	if st.Queries != 3 {
		t.Fatalf("queries = %d, want 3", st.Queries)
	}
	// The second request must be marked as served from the cache.
	_, body = get(t, queryURL(ts.URL, q1, nil))
	if !strings.Contains(body, `"cache":"hit"`) {
		t.Fatalf("repeat response not marked as cache hit: %s", body)
	}
}

func TestEnginesShareCacheSeparately(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	for _, eng := range []string{"emptyheaded", "logicblox", "naive"} {
		code, body := get(t, queryURL(ts.URL, q, map[string]string{"engine": eng}))
		if code != http.StatusOK {
			t.Fatalf("engine %s: status %d, body %s", eng, code, body)
		}
		if !strings.Contains(body, "<http://ex/bob>") {
			t.Fatalf("engine %s: wrong result %s", eng, body)
		}
	}
	_, body := get(t, ts.URL+"/stats")
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	// Same query text, three engines: three distinct cache entries.
	if st.PlanCache.Misses != 3 || st.PlanCache.Size != 3 {
		t.Fatalf("plan cache misses=%d size=%d, want 3/3", st.PlanCache.Misses, st.PlanCache.Size)
	}
}

// TestMaxRowsTruncation checks the serving-layer row cap: a query whose
// full result would be 27k rows comes back with exactly MaxRows rows and a
// truncation marker, for both the in-enumeration path (emptyheaded) and
// the after-the-fact path (monetdb).
func TestMaxRowsTruncation(t *testing.T) {
	_, ts := newTestServer(t, denseStore(30), Config{MaxRows: 500})
	for _, eng := range []string{"emptyheaded", "monetdb"} {
		code, body := get(t, queryURL(ts.URL, triangleQuery, map[string]string{"engine": eng}))
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d, body %.200s", eng, code, body)
		}
		var out struct {
			Truncated bool `json:"truncated"`
			Count     int  `json:"count"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("%s: bad JSON: %v", eng, err)
		}
		if out.Count != 500 || !out.Truncated {
			t.Fatalf("%s: count=%d truncated=%v, want 500/true", eng, out.Count, out.Truncated)
		}
	}
	// Under the cap (30 rows): no truncation marker.
	q := `SELECT ?x WHERE { <http://ex/n0> <http://ex/p> ?x }`
	_, body := get(t, queryURL(ts.URL, q, nil))
	if strings.Contains(body, `"truncated"`) {
		t.Fatalf("small result carries truncation marker: %.200s", body)
	}
}

func TestUnknownEngineDoesNotGrowSlots(t *testing.T) {
	s, ts := newTestServer(t, smallStore(), Config{})
	for i := 0; i < 5; i++ {
		get(t, queryURL(ts.URL, `SELECT ?x WHERE { ?x <http://ex/p> ?x }`, map[string]string{"engine": fmt.Sprintf("bogus%d", i)}))
	}
	s.mu.Lock()
	n := len(s.engines)
	s.mu.Unlock()
	if n != 1 { // the default engine only
		t.Fatalf("engine slots = %d, want 1 (garbage names must not allocate)", n)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if !strings.Contains(body, `"triples":3`) {
		t.Fatalf("healthz body = %q, want triples count", body)
	}
}

// TestConcurrentClients hammers one server from many goroutines across
// engines and formats. Run under -race (CI does) this also proves the
// shared store's lazy index construction and the plan cache are safe for
// concurrent use.
func TestConcurrentClients(t *testing.T) {
	st := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: 1, Seed: 0}, st.Add)
	srv, ts := newTestServer(t, st.Build(), Config{MaxConcurrent: 4, PlanCacheSize: 8})

	queries := []string{
		lubm.Query(1, 1),
		lubm.Query(2, 1),
		lubm.Query(8, 1),
		lubm.Query(14, 1),
	}
	engines := []string{"", "emptyheaded", "logicblox", "rdf3x"}
	const goroutines = 16
	const perGoroutine = 10

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perGoroutine)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				q := queries[(g+i)%len(queries)]
				extra := map[string]string{}
				if e := engines[(g+i)%len(engines)]; e != "" {
					extra["engine"] = e
				}
				if i%2 == 1 {
					extra["format"] = "tsv"
				}
				resp, err := http.Get(queryURL(ts.URL, q, extra))
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d req %d: HTTP %d", g, i, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st2 := srv.Stats()
	if st2.Queries != goroutines*perGoroutine {
		t.Fatalf("queries = %d, want %d", st2.Queries, goroutines*perGoroutine)
	}
	if st2.Errors != 0 {
		t.Fatalf("errors = %d, want 0", st2.Errors)
	}
	if st2.PlanCache.Hits == 0 {
		t.Fatal("no plan cache hits under repeated concurrent load")
	}
	if st2.Latency.Count != goroutines*perGoroutine || st2.Latency.P99Ms < st2.Latency.P50Ms {
		t.Fatalf("implausible latency stats: %+v", st2.Latency)
	}
}

// TestWorkersParam: ?workers=N runs the parallel enumeration path and must
// return the same result as the sequential one (and garbage values are
// rejected).
func TestWorkersParam(t *testing.T) {
	_, ts := newTestServer(t, denseStore(12), Config{MaxConcurrent: 8})
	var bodies []string
	for _, extra := range []map[string]string{nil, {"workers": "4"}} {
		code, body := get(t, queryURL(ts.URL, triangleQuery, extra))
		if code != http.StatusOK {
			t.Fatalf("workers=%v: status %d, body %.200s", extra, code, body)
		}
		bodies = append(bodies, body)
	}
	var seq, par struct {
		Count int        `json:"count"`
		Rows  [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(bodies[0]), &seq); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(bodies[1]), &par); err != nil {
		t.Fatal(err)
	}
	if seq.Count != 12*12*12 || par.Count != seq.Count {
		t.Fatalf("counts: sequential %d, workers=4 %d (want %d)", seq.Count, par.Count, 12*12*12)
	}
	if code, _ := get(t, queryURL(ts.URL, triangleQuery, map[string]string{"workers": "banana"})); code != http.StatusBadRequest {
		t.Fatalf("garbage workers: status %d, want 400", code)
	}
	// A request above the ceiling is clamped, not rejected.
	if code, _ := get(t, queryURL(ts.URL, triangleQuery, map[string]string{"workers": "10000"})); code != http.StatusOK {
		t.Fatalf("huge workers: status %d, want 200 (clamped)", code)
	}
}

// TestOffsetParam: ?offset=N skips rows; offset past the end yields an
// empty result.
func TestOffsetParam(t *testing.T) {
	_, ts := newTestServer(t, denseStore(6), Config{})
	q := `SELECT ?x ?y WHERE { ?x <http://ex/p> ?y }` // 36 rows
	type resp struct {
		Count int        `json:"count"`
		Rows  [][]string `json:"rows"`
	}
	var full, skipped, beyond resp
	for _, tc := range []struct {
		extra map[string]string
		out   *resp
	}{
		{nil, &full},
		{map[string]string{"offset": "30"}, &skipped},
		{map[string]string{"offset": "1000"}, &beyond},
	} {
		code, body := get(t, queryURL(ts.URL, q, tc.extra))
		if code != http.StatusOK {
			t.Fatalf("offset %v: status %d", tc.extra, code)
		}
		if err := json.Unmarshal([]byte(body), tc.out); err != nil {
			t.Fatal(err)
		}
	}
	if full.Count != 36 || skipped.Count != 6 || beyond.Count != 0 {
		t.Fatalf("counts = %d/%d/%d, want 36/6/0", full.Count, skipped.Count, beyond.Count)
	}
	if code, _ := get(t, queryURL(ts.URL, q, map[string]string{"offset": "-3"})); code != http.StatusBadRequest {
		t.Fatalf("negative offset accepted")
	}
}

// TestAdmissionControl429: with the single worker slot held by a slow query
// and a primed hold-time estimate, a short-deadline request must be bounced
// immediately with 429 + Retry-After instead of queueing to a certain 504.
func TestAdmissionControl429(t *testing.T) {
	srv, ts := newTestServer(t, denseStore(350), Config{MaxConcurrent: 1, MaxRows: -1})
	// Teach the EWMA that slots are held for a long time.
	srv.stats.endHold("emptyheaded", 0, 5*time.Second) // seed the EWMA

	// Occupy the only slot with a long triangle enumeration.
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(queryURL(ts.URL, triangleQuery, map[string]string{"timeout": "30s"}))
		if err == nil {
			<-release
			resp.Body.Close()
		}
	}()
	// Wait until the slot is actually held.
	for i := 0; ; i++ {
		if inUse, _, _ := srv.pool.stats(); inUse == 1 {
			break
		}
		if i > 500 {
			t.Fatal("slow query never acquired the slot")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Get(queryURL(ts.URL, triangleQuery, map[string]string{"timeout": "50ms"}))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %.200s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive number of seconds", ra)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	close(release)
	<-done
}

// TestStatsNewFields: queue depth, in-flight slots, and per-engine latency
// percentiles appear in /stats after traffic.
func TestStatsNewFields(t *testing.T) {
	_, ts := newTestServer(t, smallStore(), Config{})
	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`
	for _, eng := range []string{"emptyheaded", "naive"} {
		if code, body := get(t, queryURL(ts.URL, q, map[string]string{"engine": eng})); code != http.StatusOK {
			t.Fatalf("engine %s: status %d, body %s", eng, code, body)
		}
	}
	code, body := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /stats JSON: %v", err)
	}
	if st.QueueDepth != 0 || st.InFlightSlots != 0 {
		t.Fatalf("idle server reports queue_depth=%d in_flight_slots=%d", st.QueueDepth, st.InFlightSlots)
	}
	for _, eng := range []string{"emptyheaded", "naive"} {
		el, ok := st.EngineLatency[eng]
		if !ok || el.Count != 1 {
			t.Fatalf("engine_latency[%s] = %+v (body %s)", eng, el, body)
		}
		if el.P50Ms < 0 || el.P99Ms < el.P50Ms {
			t.Fatalf("implausible per-engine latency: %+v", el)
		}
	}
	if !strings.Contains(body, `"rejected"`) {
		t.Fatalf("/stats missing rejected counter: %s", body)
	}
}

// TestStreamingTruncationExactAllEngines: every engine reports truncation
// through the cursor probe — exactly MaxRows rows with "truncated":true
// when more exist, and no marker when the result fits exactly.
func TestStreamingTruncationExact(t *testing.T) {
	// 6^3 = 216 triangle rows. Exact fit: no marker.
	_, tsFit := newTestServer(t, denseStore(6), Config{MaxRows: 216})
	for _, eng := range []string{"emptyheaded", "monetdb", "naive"} {
		_, body := get(t, queryURL(tsFit.URL, triangleQuery, map[string]string{"engine": eng}))
		if strings.Contains(body, `"truncated"`) {
			t.Fatalf("%s: exact-fit result carries truncation marker: %.200s", eng, body)
		}
	}
	// One row below the result size: exactly MaxRows rows, marked truncated.
	_, tsCap := newTestServer(t, denseStore(6), Config{MaxRows: 215})
	for _, eng := range []string{"emptyheaded", "monetdb", "naive"} {
		_, body := get(t, queryURL(tsCap.URL, triangleQuery, map[string]string{"engine": eng}))
		var out struct {
			Count     int  `json:"count"`
			Truncated bool `json:"truncated"`
		}
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatalf("%s: bad JSON: %v", eng, err)
		}
		if out.Count != 215 || !out.Truncated {
			t.Fatalf("%s: count=%d truncated=%v, want 215/true", eng, out.Count, out.Truncated)
		}
	}
}
