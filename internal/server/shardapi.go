package server

// shardapi.go is the worker side of cluster serving: POST /shard/query
// executes one shard's sub-query locally and streams the result rows back
// as the CRC'd, sequence-numbered frames of internal/cluster's wire
// protocol. The endpoint is mounted only on sharded non-coordinator
// servers (see Handler).
//
// The contract that makes coordinator retries exactly-once lives here:
//
//   - Sub-queries execute with Workers=0, so enumeration order is
//     deterministic — the same request always yields the same row
//     sequence.
//   - The ownership filter (owner/root) and the resume offset (skip) are
//     applied worker-side, and skip counts *kept* rows: a coordinator that
//     received K rows before its stream broke resumes with skip=K and the
//     worker re-enumerates, discarding exactly the rows already delivered.
//   - The stream header carries the worker's store epoch; a coordinator
//     resuming mid-drain refuses a changed epoch rather than splicing rows
//     from two dataset versions.
//
// Execution errors after the stream has started travel in the terminal
// frame; transport-level trouble is what the CRCs and sequence numbers
// catch on the other end.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/shard"
)

// shardQueryCacheCap bounds the worker's parsed sub-query intern map.
const shardQueryCacheCap = 1 << 12

// internShardQuery parses text, memoizing the parsed query per text so
// repeated drains of the same sub-query hand every engine layer the same
// *query.BGP pointer (the per-shard plan caches key on it).
func (s *Server) internShardQuery(text string) (*query.BGP, error) {
	s.shardQMu.Lock()
	if q, ok := s.shardQ[text]; ok {
		s.shardQMu.Unlock()
		return q, nil
	}
	s.shardQMu.Unlock()
	q, err := query.ParseSPARQL(text)
	if err != nil {
		return nil, err
	}
	s.shardQMu.Lock()
	defer s.shardQMu.Unlock()
	if cached, ok := s.shardQ[text]; ok {
		return cached, nil
	}
	if len(s.shardQ) >= shardQueryCacheCap {
		for k := range s.shardQ {
			delete(s.shardQ, k)
			break
		}
	}
	s.shardQ[text] = q
	return q, nil
}

// shardIntParam parses an integer query parameter with a default for the
// empty string (owner uses -1 = unfiltered).
func shardIntParam(r *http.Request, name string, def int) (int, error) {
	v := r.FormValue(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q (want an integer)", name, v)
	}
	return n, nil
}

func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	part := s.ls.Part()
	if part == nil {
		httpError(w, http.StatusServiceUnavailable, "this server is not sharded")
		return
	}
	n := part.NumShards()
	wantShards, err := shardIntParam(r, "shards", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if wantShards != n {
		// A topology mismatch would silently mis-filter ownership; refuse
		// loudly. 409 is permanent on the coordinator side — retrying a
		// misconfigured fleet cannot help.
		httpError(w, http.StatusConflict, "shard-count mismatch: this worker partitions %d ways, coordinator expects %d", n, wantShards)
		return
	}
	sh, err := shardIntParam(r, "shard", -1)
	if err != nil || sh < 0 || sh >= n {
		httpError(w, http.StatusBadRequest, "bad shard %q (worker has shards 0..%d)", r.FormValue("shard"), n-1)
		return
	}
	owner, err := shardIntParam(r, "owner", -1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	root, err := shardIntParam(r, "root", -1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	skip, err := shardIntParam(r, "skip", 0)
	if err != nil || skip < 0 {
		httpError(w, http.StatusBadRequest, "bad skip %q (want a non-negative integer)", r.FormValue("skip"))
		return
	}
	rowCap, err := shardIntParam(r, "cap", 0)
	if err != nil || rowCap < 0 {
		httpError(w, http.StatusBadRequest, "bad cap %q (want a non-negative integer)", r.FormValue("cap"))
		return
	}

	engineName := r.FormValue("engine")
	if engineName == "" {
		engineName = s.cfg.DefaultEngine
	}
	le, err := s.engine(engineName)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	text, err := queryText(r)
	if err != nil || text == "" {
		httpError(w, http.StatusBadRequest, "reading sub-query: %v", err)
		return
	}
	q, err := s.internShardQuery(text)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if owner >= 0 && (root < 0 || root >= len(q.Select)) {
		httpError(w, http.StatusBadRequest, "bad root index %d for %d-variable sub-query", root, len(q.Select))
		return
	}

	epoch := le.Epoch()
	inner, err := le.Inner()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "building engine: %v", err)
		return
	}
	se, ok := inner.(*shard.Engine)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "engine %q is not sharded on this worker", engineName)
		return
	}

	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	// Workers=0: the exactly-once resume contract requires deterministic
	// enumeration order across attempts.
	cur, err := se.ShardEngine(sh).Open(q, engine.ExecOpts{Ctx: ctx})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "opening sub-query: %v", err)
		return
	}
	defer cur.Close()

	w.Header().Set("Content-Type", "application/octet-stream")
	var flush func()
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	sw := cluster.NewShardStreamWriter(w, flush)
	if err := sw.Header(cur.Vars(), epoch, sh); err != nil {
		return // client gone; nothing sensible left to send
	}
	kept, sent := 0, 0
	for {
		row, err := cur.Next()
		if err == io.EOF {
			sw.Finish("")
			return
		}
		if err != nil {
			// Execution failed mid-stream: the terminal frame reports it;
			// rows already shipped stay valid for resume accounting.
			sw.Finish(err.Error())
			return
		}
		if owner >= 0 && shard.ShardOf(row[root], n) != owner {
			continue
		}
		kept++
		if kept <= skip {
			continue
		}
		if err := sw.Row(row); err != nil {
			return // client gone
		}
		sent++
		if rowCap > 0 && sent >= rowCap {
			sw.Finish("")
			return
		}
	}
}
