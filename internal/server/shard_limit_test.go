package server

// Tests for the serving-layer features of the sharded scatter-gather PR:
// Config.Shards (per-request execution over shard.Engine + /stats layout
// and drain-balance reporting), the per-engine admission EWMA split, and
// SPARQL LIMIT/OFFSET mapped end-to-end onto the cursor contract.

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"
)

// collectTSV fetches the query as TSV and returns its data rows, sorted.
func collectTSV(t *testing.T, base, q, eng string) []string {
	t.Helper()
	code, body := get(t, queryURL(base, q, map[string]string{"engine": eng, "format": "tsv"}))
	if code != http.StatusOK {
		t.Fatalf("engine %s: status %d, body %.300s", eng, code, body)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	rows := lines[1:] // drop the header
	sort.Strings(rows)
	return rows
}

// TestShardedServerMatchesUnsharded: the same queries against a sharded and
// an unsharded server over the same store return identical row sets, for a
// shard-local star, a replication-dependent path, and the merge-join
// triangle.
func TestShardedServerMatchesUnsharded(t *testing.T) {
	st := denseStore(8)
	_, plain := newTestServer(t, st, Config{MaxRows: -1})
	srv, sharded := newTestServer(t, st, Config{MaxRows: -1, Shards: 3})
	queries := []string{
		`SELECT ?a ?b WHERE { ?x <http://ex/p> ?a . ?x <http://ex/p> ?b }`,
		`SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z }`,
		triangleQuery,
	}
	// ?workers= is honoured (and accounted) for sharded core engines too:
	// same rows, parallel per-shard enumeration.
	wantPar := collectTSV(t, plain.URL, triangleQuery, "emptyheaded")
	pcode, pbody := get(t, queryURL(sharded.URL, triangleQuery,
		map[string]string{"engine": "emptyheaded", "format": "tsv", "workers": "2"}))
	if pcode != http.StatusOK {
		t.Fatalf("workers=2 sharded: status %d, body %.300s", pcode, pbody)
	}
	gotPar := strings.Split(strings.TrimRight(pbody, "\n"), "\n")[1:]
	sort.Strings(gotPar)
	if len(gotPar) != len(wantPar) {
		t.Fatalf("workers=2 sharded: %d rows, want %d", len(gotPar), len(wantPar))
	}
	for i := range wantPar {
		if gotPar[i] != wantPar[i] {
			t.Fatalf("workers=2 sharded: row %d differs: %q vs %q", i, gotPar[i], wantPar[i])
		}
	}

	for _, q := range queries {
		for _, eng := range []string{"emptyheaded", "naive", "monetdb"} {
			want := collectTSV(t, plain.URL, q, eng)
			got := collectTSV(t, sharded.URL, q, eng)
			if len(got) != len(want) {
				t.Fatalf("%s %q: %d rows sharded, %d unsharded", eng, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %q: row %d differs: %q vs %q", eng, q, i, got[i], want[i])
				}
			}
		}
	}

	// /stats reports the partition layout and a non-trivial drain balance.
	stats := srv.Stats()
	if stats.Sharding == nil {
		t.Fatal("sharded server reports no Sharding stats")
	}
	if stats.Sharding.Shards != 3 {
		t.Fatalf("Sharding.Shards = %d, want 3", stats.Sharding.Shards)
	}
	ownedSum := 0
	for _, n := range stats.Sharding.OwnedTriples {
		ownedSum += n
	}
	if ownedSum != st.NumTriples() {
		t.Fatalf("owned triples sum %d != %d", ownedSum, st.NumTriples())
	}
	var deliveredSum int64
	for _, n := range stats.Sharding.MergeRowsDelivered {
		deliveredSum += n
	}
	if deliveredSum == 0 {
		t.Fatal("no merge rows delivered recorded after sharded traffic")
	}
	// Scatter-planning counters: the traffic above compiled root-covered
	// groups, and the repeated queries (the triangle ran more than once per
	// engine) were answered from cached scatter plans — the plan-cache
	// interning chain (normalize → interned BGP pointer → shard plan cache)
	// is load-bearing for the sharded hot path, so its observability is too.
	if stats.Sharding.PlansCompiled == 0 || stats.Sharding.GroupsPlanned == 0 {
		t.Fatalf("no scatter planning recorded: %+v", stats.Sharding)
	}
	reuseBefore := stats.Sharding.PlanReuseHits
	collectTSV(t, sharded.URL, triangleQuery, "emptyheaded")
	if after := srv.Stats().Sharding.PlanReuseHits; after <= reuseBefore {
		t.Fatalf("plan_reuse_hits = %d after repeating a cached query, want > %d", after, reuseBefore)
	}
	// The JSON payload carries the section (and the unsharded server omits it).
	code, body := get(t, sharded.URL+"/stats")
	if code != http.StatusOK || !strings.Contains(body, `"sharding"`) {
		t.Fatalf("/stats: code=%d, sharding section missing: %.300s", code, body)
	}
	if !strings.Contains(body, `"plan_reuse_hits"`) || !strings.Contains(body, `"shards_pruned"`) {
		t.Fatalf("/stats sharding section missing scatter-planning counters: %.400s", body)
	}
	if _, body := get(t, plain.URL+"/stats"); strings.Contains(body, `"sharding"`) {
		t.Fatal("unsharded /stats carries a sharding section")
	}
}

// TestPerEngineAdmissionIndependence: hold-time EWMAs are kept per engine
// and the queue-wait estimate is driven by the engines occupying the pool.
// A history of slow pairwise traffic must not inflate estimates once fast
// queries hold the slots (no 429 for requests queued behind fast work) —
// and a pool genuinely held by a slow engine must reject honestly, even
// for requests naming a fast engine.
func TestPerEngineAdmissionIndependence(t *testing.T) {
	srv, ts := newTestServer(t, smallStore(), Config{MaxConcurrent: 1})
	// Two engines with very different observed hold times.
	srv.stats.endHold("monetdb", 0, 10*time.Second)
	srv.stats.endHold("emptyheaded", 0, time.Millisecond)

	// Saturate the pool directly so every probe below faces ahead > 0.
	if err := srv.pool.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	defer srv.pool.release(1)

	q := `SELECT ?who WHERE { <http://ex/alice> <http://ex/knows> ?who }`

	// Case 1: the held slot belongs to the fast engine. A monetdb request
	// (own EWMA ≈10s — irrelevant: it is not what the queue drains behind)
	// must be admitted, then queue past its deadline → 504, never 429.
	// Under the old shared EWMA the 10s sample would have rejected it.
	srv.stats.beginHold("emptyheaded", 1)
	code, body := get(t, queryURL(ts.URL, q, map[string]string{"engine": "monetdb", "timeout": "300ms"}))
	if code == http.StatusTooManyRequests {
		t.Fatalf("request queued behind fast work rejected: body %.200s", body)
	}
	if code != http.StatusGatewayTimeout {
		t.Fatalf("case 1: status %d, want 504 (queued past deadline); body %.200s", code, body)
	}

	// Case 2: the held slot belongs to the slow engine. Even a fast-engine
	// request is honestly rejected — the pool drains at monetdb speed.
	srv.stats.endHold("emptyheaded", 1, time.Millisecond)
	srv.stats.beginHold("monetdb", 1)
	code, body = get(t, queryURL(ts.URL, q, map[string]string{"engine": "emptyheaded", "timeout": "300ms"}))
	if code != http.StatusTooManyRequests {
		t.Fatalf("case 2: status %d, want 429; body %.200s", code, body)
	}

	// Case 3: occupancy untracked (slot held outside request handling) →
	// fall back to the requester's own EWMA; an engine with no samples
	// admits and learns.
	srv.stats.endHold("monetdb", 1, 10*time.Second)
	code, body = get(t, queryURL(ts.URL, q, map[string]string{"engine": "naive", "timeout": "300ms"}))
	if code == http.StatusTooManyRequests {
		t.Fatalf("sampleless engine rejected by admission control; body %.200s", body)
	}

	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	// /stats attributes the EWMAs to their engines.
	el := srv.Stats().EngineLatency
	if el["monetdb"].HoldEWMAMs < el["emptyheaded"].HoldEWMAMs {
		t.Fatalf("hold EWMAs not split per engine: %+v", el)
	}
}

// TestSPARQLLimitOffsetEndToEnd: LIMIT/OFFSET clauses in the query text map
// onto the exact cursor caps, compose with ?offset=, and never widen the
// server's MaxRows ceiling.
func TestSPARQLLimitOffsetEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, denseStore(6), Config{MaxRows: -1}) // 216 triangle rows
	type out struct {
		Count     int  `json:"count"`
		Truncated bool `json:"truncated"`
	}
	run := func(q string, extra map[string]string) out {
		t.Helper()
		code, body := get(t, queryURL(ts.URL, q, extra))
		if code != http.StatusOK {
			t.Fatalf("%q: status %d, body %.300s", q, code, body)
		}
		var o out
		if err := json.Unmarshal([]byte(body), &o); err != nil {
			t.Fatalf("%q: bad JSON: %v", q, err)
		}
		return o
	}

	if o := run(triangleQuery+" LIMIT 10", nil); o.Count != 10 || !o.Truncated {
		t.Fatalf("LIMIT 10: count=%d truncated=%v, want 10/true", o.Count, o.Truncated)
	}
	if o := run(triangleQuery+" LIMIT 216", nil); o.Count != 216 || o.Truncated {
		t.Fatalf("LIMIT 216 (exact): count=%d truncated=%v, want 216/false", o.Count, o.Truncated)
	}
	if o := run(triangleQuery+" OFFSET 211", nil); o.Count != 5 || o.Truncated {
		t.Fatalf("OFFSET 211: count=%d truncated=%v, want 5/false", o.Count, o.Truncated)
	}
	if o := run(triangleQuery+" LIMIT 4 OFFSET 3", nil); o.Count != 4 || !o.Truncated {
		t.Fatalf("LIMIT 4 OFFSET 3: count=%d truncated=%v, want 4/true", o.Count, o.Truncated)
	}
	// OFFSET clause composes with the ?offset= parameter (they add).
	if o := run(triangleQuery+" OFFSET 100", map[string]string{"offset": "111"}); o.Count != 5 {
		t.Fatalf("OFFSET 100 + ?offset=111: count=%d, want 5", o.Count)
	}
	// LIMIT 0 yields no rows but the truncated flag stays exact.
	if o := run(triangleQuery+" LIMIT 0", nil); o.Count != 0 || !o.Truncated {
		t.Fatalf("LIMIT 0: count=%d truncated=%v, want 0/true", o.Count, o.Truncated)
	}
	if o := run(`SELECT ?x WHERE { <http://ex/n0> <http://ex/nope> ?x } LIMIT 0`, nil); o.Count != 0 || o.Truncated {
		t.Fatalf("LIMIT 0 on empty: count=%d truncated=%v, want 0/false", o.Count, o.Truncated)
	}

	// A client LIMIT cannot widen the operator ceiling.
	_, tsCapped := newTestServer(t, denseStore(6), Config{MaxRows: 50})
	code, body := get(t, queryURL(tsCapped.URL, triangleQuery+" LIMIT 200", nil))
	if code != http.StatusOK {
		t.Fatalf("capped server: status %d, body %.300s", code, body)
	}
	var capped out
	if err := json.Unmarshal([]byte(body), &capped); err != nil {
		t.Fatal(err)
	}
	if capped.Count != 50 || !capped.Truncated {
		t.Fatalf("ceiling: count=%d truncated=%v, want 50/true", capped.Count, capped.Truncated)
	}
}
