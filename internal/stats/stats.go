// Package stats holds the measured quantities that drive the system's
// representation and algorithm choices — the paper's thesis (Aberger et al.,
// ICDE 2016) is that these choices, made from simple statistics, dominate
// RDF join performance, so the statistics themselves are a first-class
// artifact: computed once at trie build time, persisted alongside the trie
// in segment files, and consulted by the layout chooser (internal/trie), the
// cost model (internal/plan), and the engine router (internal/engines).
//
// The package has two halves. Level is the per-trie-level histogram
// (cardinality distribution, density, skew) that the layout and cost
// decisions read. Chooser is the process-wide decision ledger — how often
// the adaptive layout disagreed with the paper's static 1-in-256 rule,
// which engines the auto router picked, and how often the cost model's
// cached decisions were reused — surfaced by the server's /stats endpoint.
package stats

import (
	"sync"
	"sync/atomic"
)

// Level summarizes every set at one trie level. All counts are over the
// nodes (sets) of the level, not tuples.
type Level struct {
	Nodes       uint64 // number of sets at this level
	TotalCard   uint64 // sum of set cardinalities
	MinCard     uint64 // smallest set cardinality (0 iff Nodes == 0)
	MaxCard     uint64 // largest set cardinality
	SpanSum     uint64 // sum of (max-min+1) value spans — the density denominator
	BitsetNodes uint64 // sets laid out as bitsets
	UintNodes   uint64 // sets laid out as sorted uint arrays
	Flips       uint64 // sets where the measured choice differs from the 1-in-256 rule
}

// Observe folds one set into the histogram.
func (l *Level) Observe(card, span uint64, bitset, flip bool) {
	if l.Nodes == 0 || card < l.MinCard {
		l.MinCard = card
	}
	if card > l.MaxCard {
		l.MaxCard = card
	}
	l.Nodes++
	l.TotalCard += card
	l.SpanSum += span
	if bitset {
		l.BitsetNodes++
	} else {
		l.UintNodes++
	}
	if flip {
		l.Flips++
	}
}

// Density is the level's aggregate fill factor: members per spanned value.
// 1.0 means every set is a contiguous run; the bitset layout wins well below
// that (the measured crossover is near 1/128).
func (l *Level) Density() float64 {
	if l.SpanSum == 0 {
		return 0
	}
	return float64(l.TotalCard) / float64(l.SpanSum)
}

// AvgCard is the mean set cardinality at this level.
func (l *Level) AvgCard() float64 {
	if l.Nodes == 0 {
		return 0
	}
	return float64(l.TotalCard) / float64(l.Nodes)
}

// Skew is MaxCard over AvgCard — 1.0 for perfectly uniform levels, large
// when a few hub nodes dominate. The cost model reads this to distrust
// average-based size estimates on skewed levels.
func (l *Level) Skew() float64 {
	avg := l.AvgCard()
	if avg == 0 {
		return 0
	}
	return float64(l.MaxCard) / avg
}

// Merge folds other into l (per-level aggregation across tries).
func (l *Level) Merge(other Level) {
	if other.Nodes == 0 {
		return
	}
	if l.Nodes == 0 || other.MinCard < l.MinCard {
		l.MinCard = other.MinCard
	}
	if other.MaxCard > l.MaxCard {
		l.MaxCard = other.MaxCard
	}
	l.Nodes += other.Nodes
	l.TotalCard += other.TotalCard
	l.SpanSum += other.SpanSum
	l.BitsetNodes += other.BitsetNodes
	l.UintNodes += other.UintNodes
	l.Flips += other.Flips
}

// Chooser is the process-wide ledger of representation and algorithm
// decisions. All methods are safe for concurrent use; trie builds, the plan
// compiler, and the serving layer all write to the Default instance.
type Chooser struct {
	layoutBitset atomic.Uint64
	layoutUint   atomic.Uint64
	layoutFlips  atomic.Uint64
	costLookups  atomic.Uint64
	costHits     atomic.Uint64

	mu    sync.Mutex
	picks map[string]uint64
}

// Default is the ledger the serving layer reports from.
var Default = &Chooser{}

// RecordLayout adds one adaptive trie build's layout tallies.
func (c *Chooser) RecordLayout(bitset, uints, flips uint64) {
	c.layoutBitset.Add(bitset)
	c.layoutUint.Add(uints)
	c.layoutFlips.Add(flips)
}

// RecordEnginePick notes that the auto router chose the named engine for a
// query.
func (c *Chooser) RecordEnginePick(engine string) {
	c.mu.Lock()
	if c.picks == nil {
		c.picks = make(map[string]uint64)
	}
	c.picks[engine]++
	c.mu.Unlock()
}

// RecordCostLookup notes one consultation of a cached cost-model decision.
func (c *Chooser) RecordCostLookup(hit bool) {
	c.costLookups.Add(1)
	if hit {
		c.costHits.Add(1)
	}
}

// ChooserSnapshot is a point-in-time copy of the ledger, shaped for the
// server's /stats JSON.
type ChooserSnapshot struct {
	LayoutBitsetNodes uint64            `json:"layout_bitset_nodes"`
	LayoutUintNodes   uint64            `json:"layout_uint_nodes"`
	LayoutFlips       uint64            `json:"layout_flips"`
	EnginePicks       map[string]uint64 `json:"engine_picks"`
	CostLookups       uint64            `json:"cost_lookups"`
	CostHits          uint64            `json:"cost_hits"`
	CostHitRate       float64           `json:"cost_model_hit_rate"`
}

// Snapshot copies the ledger.
func (c *Chooser) Snapshot() ChooserSnapshot {
	s := ChooserSnapshot{
		LayoutBitsetNodes: c.layoutBitset.Load(),
		LayoutUintNodes:   c.layoutUint.Load(),
		LayoutFlips:       c.layoutFlips.Load(),
		CostLookups:       c.costLookups.Load(),
		CostHits:          c.costHits.Load(),
		EnginePicks:       map[string]uint64{},
	}
	c.mu.Lock()
	for k, v := range c.picks {
		s.EnginePicks[k] = v
	}
	c.mu.Unlock()
	if s.CostLookups > 0 {
		s.CostHitRate = float64(s.CostHits) / float64(s.CostLookups)
	}
	return s
}
