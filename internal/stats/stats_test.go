package stats

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestLevelObserveAndDerived(t *testing.T) {
	var l Level
	l.Observe(10, 100, true, false)
	l.Observe(30, 100, false, true)
	if l.Nodes != 2 || l.TotalCard != 40 || l.MinCard != 10 || l.MaxCard != 30 {
		t.Fatalf("level after two observations: %+v", l)
	}
	if l.BitsetNodes != 1 || l.UintNodes != 1 || l.Flips != 1 {
		t.Fatalf("layout counters: %+v", l)
	}
	if d := l.Density(); d != 40.0/200.0 {
		t.Errorf("Density = %f", d)
	}
	if a := l.AvgCard(); a != 20 {
		t.Errorf("AvgCard = %f", a)
	}
	if s := l.Skew(); s != 30.0/20.0 {
		t.Errorf("Skew = %f", s)
	}
	var zero Level
	if zero.Density() != 0 || zero.AvgCard() != 0 || zero.Skew() != 0 {
		t.Errorf("zero level derived stats must be 0, got %f %f %f",
			zero.Density(), zero.AvgCard(), zero.Skew())
	}
}

func TestChooserSnapshotUnderConcurrency(t *testing.T) {
	var c Chooser
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.RecordLayout(3, 2, 1)
				c.RecordEnginePick("pure-wcoj")
				c.RecordCostLookup(j%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.LayoutBitsetNodes != 2400 || s.LayoutUintNodes != 1600 || s.LayoutFlips != 800 {
		t.Fatalf("layout counters: %+v", s)
	}
	if s.EnginePicks["pure-wcoj"] != 800 {
		t.Fatalf("engine picks: %+v", s.EnginePicks)
	}
	if s.CostLookups != 800 || s.CostHits != 400 {
		t.Fatalf("cost lookups: %+v", s)
	}
	if s.CostHitRate != 0.5 {
		t.Fatalf("hit rate = %f", s.CostHitRate)
	}
	// The snapshot must serialize with the documented field names — /stats
	// consumers key on them.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"layout_bitset_nodes", "engine_picks", "cost_model_hit_rate"} {
		if !json.Valid(data) || !contains(string(data), key) {
			t.Errorf("snapshot JSON missing %q: %s", key, data)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
