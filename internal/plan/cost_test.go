package plan_test

import (
	"testing"

	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func profile(t testing.TB, st *store.Store, text string) plan.Profile {
	t.Helper()
	q, err := query.ParseSPARQL(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prof, err := plan.ProfileQuery(q, st)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return prof
}

// TestChooseClassRoutesLubmQueries pins the cost model's routing on the
// Table II perf queries: the selective and cyclic shapes (q1, q2, q7) go to
// the hybrid GHD engine, the output-heavy path query q8 to pure WCOJ (its
// per-row overhead is lower once results dominate), and the single-pattern
// scan q14 to scan-enumerate. These are the decisions the auto engine's
// acceptance numbers depend on, so a constant tweak that silently reroutes
// a query fails here instead of in a benchmark three PRs later.
func TestChooseClassRoutesLubmQueries(t *testing.T) {
	st := lubmStore(t)
	want := map[int]plan.EngineClass{
		1:  plan.ClassHybridGHD,
		2:  plan.ClassHybridGHD,
		7:  plan.ClassHybridGHD,
		8:  plan.ClassPureWCOJ,
		14: plan.ClassScanEnumerate,
	}
	for qn, wantClass := range want {
		prof := profile(t, st, lubm.Query(qn, 1))
		got, cost := prof.ChooseClass()
		if got != wantClass {
			t.Errorf("q%d routed to %s (cost %.0f), want %s", qn, got, cost, wantClass)
		}
		if cost <= 0 {
			t.Errorf("q%d: non-positive cost %f", qn, cost)
		}
	}
}

func TestChooseClassIsArgmin(t *testing.T) {
	st := lubmStore(t)
	for _, qn := range lubm.QueryNumbers {
		prof := profile(t, st, lubm.Query(qn, 1))
		got, cost := prof.ChooseClass()
		for _, c := range plan.Classes() {
			if prof.Cost(c) < cost {
				t.Errorf("q%d: chose %s at %.0f but %s costs %.0f", qn, got, cost, c, prof.Cost(c))
			}
		}
	}
}

func TestProfileEmptyQuery(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{t3("a", "p", "b")})
	prof := profile(t, st, `SELECT ?x WHERE { ?x <p> <zzz> . }`)
	if !prof.Empty {
		t.Fatalf("profile with unknown constant should be Empty")
	}
	if _, cost := prof.ChooseClass(); cost != 0 {
		t.Errorf("empty profile cost = %f, want 0", cost)
	}
}

func TestChooseOrderPrefersSelective(t *testing.T) {
	st := lubmStore(t)
	prof := profile(t, st, lubm.Query(2, 1))
	natural := []string{"X", "Y", "Z"}
	order := prof.ChooseOrder(natural)
	if len(order) != len(natural) {
		t.Fatalf("order %v lost variables from %v", order, natural)
	}
	// Whatever order wins must be no worse than the natural one under the
	// model's own metric — ChooseOrder may return natural itself, but never
	// something it scores higher.
	if prof.OrderCost(order) > prof.OrderCost(natural) {
		t.Errorf("chosen order %v costs %.0f > natural %v at %.0f",
			order, prof.OrderCost(order), natural, prof.OrderCost(natural))
	}
}

// BenchmarkChooserProfile measures the full cost-model decision — profile
// the query against store statistics, price all three engine classes, pick
// the argmin — which is the per-miss overhead the auto engine adds on top
// of plan compilation. It must stay orders of magnitude under the cheapest
// query it routes.
func BenchmarkChooserProfile(b *testing.B) {
	st := store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
	queries := make([]*query.BGP, 0, len(lubm.QueryNumbers))
	for _, qn := range []int{1, 2, 7, 8, 14} {
		q, err := query.ParseSPARQL(lubm.Query(qn, 1))
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		prof, err := plan.ProfileQuery(q, st)
		if err != nil {
			b.Fatal(err)
		}
		if cls, _ := prof.ChooseClass(); cls.String() == "" {
			b.Fatal("unnamed class")
		}
	}
}
