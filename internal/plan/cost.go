package plan

import (
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/set"
	"repro/internal/store"
)

// This file is the cost model behind the statistics-driven engine and order
// choices (the "auto" engine in internal/engines, the /stats chooser report,
// and the server's cost×frequency plan-cache eviction). It estimates, from
// the store's per-predicate statistics alone, how much work each engine
// class would spend on a query: a worst-case optimal leapfrog pass over a
// single flat node, a GHD-factorized hybrid plan, or a scan-and-enumerate
// pairwise plan. The constants are fit to measured LUBM crossovers on this
// codebase (see README "Cost model & kernels"): GHD factorization roughly
// halves intersection work via pushdown but pays ~4× per emitted row for
// materializing and decoding intermediates, which is why big-output queries
// (q8, q14) route away from the hybrid plan while selective and cyclic
// queries (q1, q2, q7) stay on it.

// EngineClass is one of the three algorithmic families the cost model
// prices. Each maps to a concrete engine in internal/engines' auto router.
type EngineClass int

const (
	// ClassHybridGHD is the fully optimized EmptyHeaded configuration: GHD
	// factorization, selection pushdown, pipelining, adaptive set layouts.
	ClassHybridGHD EngineClass = iota
	// ClassPureWCOJ is a single-node worst-case optimal leapfrog join with
	// array layouts (the LogicBlox-style plan) — no intermediate
	// materialization at all.
	ClassPureWCOJ
	// ClassScanEnumerate is column-scan enumeration with uint-only layouts:
	// the cheapest shape for join-free, output-dominated queries.
	ClassScanEnumerate
)

// String names the class for /stats and logs.
func (c EngineClass) String() string {
	switch c {
	case ClassHybridGHD:
		return "hybrid-ghd"
	case ClassPureWCOJ:
		return "pure-wcoj"
	case ClassScanEnumerate:
		return "scan-enumerate"
	}
	return "unknown"
}

// varStat accumulates one variable's per-pattern statistics.
type varStat struct {
	count      int     // patterns containing the variable
	minD, maxD float64 // smallest/largest per-pattern distinct-value estimate
}

// Profile is the statistical summary of a query that the cost formulas
// consume. All quantities are estimates derived from per-predicate
// statistics (rows, distinct subjects/objects) under the usual uniformity
// assumptions.
type Profile struct {
	// Empty is set when a constant is absent from the dictionary: the
	// result is necessarily empty and every engine is equally cheap.
	Empty bool
	// Patterns is the number of triple patterns.
	Patterns int
	// JoinVars is the number of variables shared by ≥2 patterns.
	JoinVars int
	// ScanRows is the summed post-selection pattern cardinality — the cost
	// of scanning every input once.
	ScanRows float64
	// EstOut is the estimated result cardinality (System-R style fold:
	// ascending-size pattern joins with division by the larger distinct
	// count per shared variable).
	EstOut float64
	// IntersectWork estimates the total set-intersection work of one
	// worst-case optimal pass: per join variable, the smallest operand
	// drives a galloping intersection over the larger ones.
	IntersectWork float64

	varWork   map[string]float64
	joinOrder []string // join variables, ascending work (selective first)
}

// ProfileQuery computes a query's statistical profile over st.
func ProfileQuery(q *query.BGP, st *store.Store) (Profile, error) {
	if err := q.Validate(); err != nil {
		return Profile{}, err
	}
	p := Profile{Patterns: len(q.Patterns), varWork: map[string]float64{}}
	vars := map[string]*varStat{}
	observe := func(name string, distinct float64) {
		vs := vars[name]
		if vs == nil {
			vs = &varStat{minD: distinct, maxD: distinct}
			vars[name] = vs
		}
		vs.count++
		if distinct < vs.minD {
			vs.minD = distinct
		}
		if distinct > vs.maxD {
			vs.maxD = distinct
		}
	}

	type pat struct {
		size float64
		vars []string
	}
	pats := make([]pat, 0, len(q.Patterns))
	for _, qp := range q.Patterns {
		if qp.P.IsVar {
			// Variable predicate: full triple table; per-position distinct
			// counts are unknown, so the row count bounds them.
			size := float64(st.NumTriples())
			var pv []string
			for _, n := range []query.Node{qp.S, qp.P, qp.O} {
				if n.IsVar {
					observe(n.Var, size)
					pv = append(pv, n.Var)
				} else if _, ok := st.Dict().Lookup(n.Term); !ok {
					return Profile{Empty: true}, nil
				}
			}
			pats = append(pats, pat{size: size, vars: pv})
			continue
		}
		pid, ok := st.Dict().Lookup(qp.P.Term)
		if !ok {
			return Profile{Empty: true}, nil
		}
		s := st.Stats(pid)
		if s.Rows == 0 {
			return Profile{Empty: true}, nil
		}
		rel := st.Relation(pid)
		var sid, oid uint32
		if !qp.S.IsVar {
			if sid, ok = st.Dict().Lookup(qp.S.Term); !ok {
				return Profile{Empty: true}, nil
			}
		}
		if !qp.O.IsVar {
			if oid, ok = st.Dict().Lookup(qp.O.Term); !ok {
				return Profile{Empty: true}, nil
			}
		}
		// Constant-selection patterns are answered exactly from the trie
		// (one root lookup, the same index the engines descend) instead of
		// by uniformity division. The difference matters: LUBM's rdf:type
		// relation puts 1/3 of its rows under one of twelve type values, so
		// rows/distinct underestimates the Student selection 4× and
		// overestimates the Department selection 100× — and the engine
		// routing below keys on exactly those cardinalities.
		size := float64(s.Rows)
		var pv []string
		switch {
		case !qp.S.IsVar && !qp.O.IsVar:
			child, ok := rel.TrieSO(set.PolicyAdaptive).Root().ChildByValue(sid)
			if !ok {
				return Profile{Empty: true}, nil
			}
			if _, ok := child.ChildByValue(oid); !ok {
				return Profile{Empty: true}, nil
			}
			size = 1
		case !qp.S.IsVar:
			child, ok := rel.TrieSO(set.PolicyAdaptive).Root().ChildByValue(sid)
			if !ok {
				return Profile{Empty: true}, nil
			}
			// Objects under one subject are distinct by triple uniqueness.
			size = float64(child.Set().Len())
			observe(qp.O.Var, size)
			pv = append(pv, qp.O.Var)
		case !qp.O.IsVar:
			child, ok := rel.TrieOS(set.PolicyAdaptive).Root().ChildByValue(oid)
			if !ok {
				return Profile{Empty: true}, nil
			}
			size = float64(child.Set().Len())
			observe(qp.S.Var, size)
			pv = append(pv, qp.S.Var)
		default:
			observe(qp.S.Var, math.Min(math.Max(float64(s.DistinctS), 1), math.Max(size, 1)))
			observe(qp.O.Var, math.Min(math.Max(float64(s.DistinctO), 1), math.Max(size, 1)))
			pv = append(pv, qp.S.Var, qp.O.Var)
		}
		pats = append(pats, pat{size: size, vars: pv})
	}

	for _, pt := range pats {
		p.ScanRows += pt.size
	}

	// Output estimate: fold patterns in ascending size order; each shared
	// variable divides by its largest distinct count.
	sort.Slice(pats, func(i, j int) bool { return pats[i].size < pats[j].size })
	rows := 1.0
	bound := map[string]bool{}
	for _, pt := range pats {
		rows *= pt.size
		for _, v := range pt.vars {
			if bound[v] {
				rows /= math.Max(vars[v].maxD, 1)
			}
			bound[v] = true
		}
	}
	p.EstOut = math.Max(rows, 1)

	// Intersection work: each join variable's leapfrog pass gallops the
	// smallest operand through the others — linear in the smallest set with
	// a logarithmic probe factor into the larger ones.
	for name, vs := range vars {
		work := vs.minD
		if vs.count >= 2 {
			p.JoinVars++
			work = vs.minD * float64(vs.count) * (1 + math.Log2(math.Max(vs.maxD/vs.minD, 1)))
			p.IntersectWork += work
			p.joinOrder = append(p.joinOrder, name)
		}
		p.varWork[name] = work
	}
	sort.Slice(p.joinOrder, func(i, j int) bool {
		a, b := p.joinOrder[i], p.joinOrder[j]
		if p.varWork[a] != p.varWork[b] {
			return p.varWork[a] < p.varWork[b]
		}
		return a < b
	})
	return p, nil
}

// Cost model constants, fit to the measured LUBM scale-1 crossovers (the
// README records the fitting runs): the hybrid plan's pushdown roughly
// halves raw intersection work, but every emitted row flows through child
// materialization and layout decode (~4× per row vs ~1.5× for a flat
// leapfrog enumeration); a pairwise plan without indexes scans everything
// and pays heavily per join for hash materialization.
const (
	hybridIntersectFactor = 0.6
	hybridRowFactor       = 4.0
	wcojRowFactor         = 1.5
	pairwiseJoinFactor    = 8.0
)

// Cost prices the profile under one engine class, in abstract "set elements
// touched" units. Comparable across classes for the same profile only.
func (p Profile) Cost(c EngineClass) float64 {
	if p.Empty {
		return 0
	}
	switch c {
	case ClassHybridGHD:
		return hybridIntersectFactor*p.IntersectWork + hybridRowFactor*p.EstOut
	case ClassPureWCOJ:
		return p.IntersectWork + wcojRowFactor*p.EstOut
	case ClassScanEnumerate:
		cost := p.ScanRows
		if p.JoinVars > 0 {
			cost += pairwiseJoinFactor * (p.ScanRows + p.EstOut)
		}
		return cost
	}
	return math.Inf(1)
}

// Classes lists every engine class the model prices.
func Classes() []EngineClass {
	return []EngineClass{ClassHybridGHD, ClassPureWCOJ, ClassScanEnumerate}
}

// ChooseClass returns the cheapest engine class for the profile and its
// estimated cost. Ties break toward the hybrid plan (the paper's default).
func (p Profile) ChooseClass() (EngineClass, float64) {
	best, bestCost := ClassHybridGHD, p.Cost(ClassHybridGHD)
	for _, c := range []EngineClass{ClassPureWCOJ, ClassScanEnumerate} {
		if cost := p.Cost(c); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best, bestCost
}

// OrderCost estimates the intersection cost of processing the join
// variables in the given attribute order: a variable at position i is
// re-intersected once per partial binding of its predecessors, so its work
// is weighted by the (estimated) growth of the prefix — placing selective
// variables first minimizes the sum, which is exactly the §III-B1
// heuristic recovered as an argmin.
func (p Profile) OrderCost(order []string) float64 {
	cost := 0.0
	prefix := 1.0
	for _, v := range order {
		w, ok := p.varWork[v]
		if !ok {
			continue
		}
		cost += prefix * w
		// The prefix multiplicity grows with the variable's selectivity
		// bound, damped: intersections shrink candidate sets well below
		// their inputs, so charge the square root of the bound.
		prefix *= math.Max(math.Sqrt(w), 1)
	}
	return cost
}

// CandidateOrders returns the attribute orders the model prices against
// each other: the statistics-driven selective-first order and the natural
// (as-written) order. Both contain exactly the join variables.
func (p Profile) CandidateOrders(natural []string) [][]string {
	var nat []string
	inJoin := map[string]bool{}
	for _, v := range p.joinOrder {
		inJoin[v] = true
	}
	for _, v := range natural {
		if inJoin[v] {
			nat = append(nat, v)
		}
	}
	return [][]string{p.joinOrder, nat}
}

// ChooseOrder returns the cheaper of the candidate orders under OrderCost.
func (p Profile) ChooseOrder(natural []string) []string {
	best := p.joinOrder
	bestCost := math.Inf(1)
	for _, o := range p.CandidateOrders(natural) {
		if len(o) == 0 {
			continue
		}
		if c := p.OrderCost(o); c < bestCost {
			best, bestCost = o, c
		}
	}
	return best
}
