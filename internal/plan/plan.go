// Package plan compiles a basic graph pattern into a physical plan for the
// worst-case optimal executor (internal/exec): it builds the query
// hypergraph (selection positions become synthetic selection vertices),
// selects a GHD via internal/ghd, derives the global attribute order (BFS
// over the GHD with the §III-B1 selection-first heuristic when enabled),
// chooses trie level orders for every relation, and marks pipelineable
// root-child pairs (§III-C).
package plan

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/ghd"
	"repro/internal/hypergraph"
	"repro/internal/query"
	"repro/internal/set"
	"repro/internal/store"
)

// Options toggles the paper's three classic optimizations plus the set
// layout policy. The zero value is the fully un-optimized configuration.
type Options struct {
	// Layout selects set layouts (PolicyAuto = the paper's optimizer,
	// PolicyUintOnly = the "-Layout" ablation).
	Layout set.Policy
	// AttributeReorder enables pushing selections down within GHD nodes
	// (§III-B1): selection vertices go first in the global attribute order
	// so equality selections become O(1)/O(log n) probes on the first trie
	// level instead of per-tuple probes on deep levels.
	AttributeReorder bool
	// GHDPushdown enables pushing selections down across GHD nodes
	// (§III-B2).
	GHDPushdown bool
	// Pipelining enables streaming a pipelineable root-child pair instead
	// of materializing the child (§III-C, Definition 2).
	Pipelining bool
}

// AllOptimizations is the fully optimized EmptyHeaded configuration.
var AllOptimizations = Options{
	Layout:           set.PolicyAuto,
	AttributeReorder: true,
	GHDPushdown:      true,
	Pipelining:       true,
}

// Key renders the options into a short canonical string, used as part of
// compiled-plan cache keys (two engines with different options must not
// share plans).
func (o Options) Key() string {
	mark := func(b bool) byte {
		if b {
			return '1'
		}
		return '0'
	}
	return string([]byte{'L', byte('0' + int(o.Layout)), 'A', mark(o.AttributeReorder), 'G', mark(o.GHDPushdown), 'P', mark(o.Pipelining)})
}

// Attr is one attribute processed by the executor: either a query variable
// or a selection vertex bound to an encoded constant.
type Attr struct {
	// Name is the variable name, or a synthetic "$<pattern><pos>" name for
	// selections.
	Name string
	// IsSel marks selection vertices.
	IsSel bool
	// Value is the encoded constant (valid when IsSel).
	Value uint32
	// Pos is the triple position this attribute occupies in its pattern:
	// 0=subject, 1=predicate, 2=object. Only meaningful inside RelRef
	// levels.
	Pos int
}

// RelRef is one relation instance inside a GHD node, with its trie level
// order resolved.
type RelRef struct {
	// PatternIdx indexes the originating pattern in the BGP.
	PatternIdx int
	// UseTriples selects the full triple table (variable predicate);
	// otherwise Pred names the vertically partitioned relation.
	UseTriples bool
	Pred       dict.ID
	// Levels lists the relation's attributes in trie level order (sorted
	// by the node's processing order).
	Levels []Attr
}

// Node is one physical GHD node.
type Node struct {
	// Attrs is the node's processing order: its bag sorted by the global
	// attribute order (selection vertices included).
	Attrs []Attr
	// Vars are the non-selection attribute names of Attrs, in order.
	Vars []string
	// Rels are the relations joined at this node (λ plus absorbed edges).
	Rels []RelRef
	// Children are the node's GHD children.
	Children []*Node
	// Interface lists the variables shared with the parent, in global
	// order (a prefix of Vars by construction).
	Interface []string
	// Pipelined marks a root child that is streamed rather than
	// materialized (§III-C).
	Pipelined bool
}

// Plan is a compiled query.
type Plan struct {
	// Empty is set when a constant in the query does not occur in the
	// dictionary, so the result is necessarily empty and execution is
	// skipped.
	Empty bool
	// Root is the physical GHD root.
	Root *Node
	// GlobalOrder is the global attribute order (selection vertices and
	// variables).
	GlobalOrder []string
	// Select is the output projection (variable names).
	Select []string
	// Distinct requests duplicate elimination.
	Distinct bool
	// Decomposition is the chosen GHD, kept for inspection and the ghdviz
	// tool.
	Decomposition *ghd.GHD
}

// Compile builds a physical plan for q over st.
func Compile(q *query.BGP, st *store.Store, opts Options) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{q: q, st: st, opts: opts}
	return c.compile()
}

type patternInfo struct {
	idx        int
	attrs      []Attr // relation attributes in triple-position order
	useTriples bool
	pred       dict.ID
	size       int
}

type compiler struct {
	q    *query.BGP
	st   *store.Store
	opts Options

	patterns []patternInfo
	edges    []hypergraph.Edge
	selVerts map[string]bool
}

func (c *compiler) compile() (*Plan, error) {
	c.selVerts = map[string]bool{}
	for i, pat := range c.q.Patterns {
		info, empty, err := c.compilePattern(i, pat)
		if err != nil {
			return nil, err
		}
		if empty {
			return &Plan{Empty: true, Select: c.q.Select, Distinct: c.q.Distinct}, nil
		}
		c.patterns = append(c.patterns, info)
		var verts []string
		seen := map[string]bool{}
		for _, a := range info.attrs {
			if !seen[a.Name] {
				seen[a.Name] = true
				verts = append(verts, a.Name)
			}
		}
		c.edges = append(c.edges, hypergraph.Edge{
			Name:     fmt.Sprintf("p%d", i),
			Vertices: verts,
			Size:     info.size,
		})
	}

	decomp, err := ghd.Choose(c.edges, c.selVerts, ghd.Options{PushdownAcrossNodes: c.opts.GHDPushdown})
	if err != nil {
		return nil, err
	}
	order := c.globalOrder(decomp)
	orderPos := map[string]int{}
	for i, a := range order {
		orderPos[a] = i
	}
	root, err := c.buildNode(decomp.Root, orderPos, nil)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Root:          root,
		GlobalOrder:   order,
		Select:        c.q.Select,
		Distinct:      c.q.Distinct,
		Decomposition: decomp,
	}
	if c.opts.Pipelining {
		markPipelined(p.Root)
	}
	return p, nil
}

// compilePattern resolves one triple pattern to a relation and attributes.
// empty=true means a constant is absent from the dictionary.
func (c *compiler) compilePattern(i int, pat query.Pattern) (patternInfo, bool, error) {
	info := patternInfo{idx: i}
	mkAttr := func(n query.Node, pos int) (Attr, bool) {
		if n.IsVar {
			return Attr{Name: n.Var, Pos: pos}, true
		}
		id, ok := c.st.Dict().Lookup(n.Term)
		if !ok {
			return Attr{}, false
		}
		name := fmt.Sprintf("$%d.%d", i, pos)
		c.selVerts[name] = true
		return Attr{Name: name, IsSel: true, Value: id, Pos: pos}, true
	}

	if pat.P.IsVar {
		info.useTriples = true
		for pos, n := range []query.Node{pat.S, pat.P, pat.O} {
			a, ok := mkAttr(n, pos)
			if !ok {
				return info, true, nil
			}
			info.attrs = append(info.attrs, a)
		}
		info.size = c.st.NumTriples()
		return info, false, nil
	}

	// Constant predicate: vertically partitioned relation over (S, O).
	pid, ok := c.st.Dict().Lookup(pat.P.Term)
	if !ok {
		return info, true, nil
	}
	rel := c.st.Relation(pid)
	if rel == nil {
		return info, true, nil
	}
	info.pred = pid
	sAttr, ok := mkAttr(pat.S, 0)
	if !ok {
		return info, true, nil
	}
	oAttr, ok := mkAttr(pat.O, 2)
	if !ok {
		return info, true, nil
	}
	info.attrs = []Attr{sAttr, oAttr}
	info.size = estimateSize(rel, sAttr, oAttr)
	return info, false, nil
}

// estimateSize returns the relation cardinality after equality selections,
// using the classic uniform-distribution estimate.
func estimateSize(rel *store.Relation, s, o Attr) int {
	size := rel.Len()
	if s.IsSel && rel.DistinctS() > 0 {
		size /= rel.DistinctS()
	}
	if o.IsSel && rel.DistinctO() > 0 {
		size /= rel.DistinctO()
	}
	if size < 1 {
		size = 1
	}
	return size
}

// globalOrder derives the global attribute order by BFS over the GHD
// (§II-C). With AttributeReorder, the §III-B1 heuristic applies: selection
// vertices are hoisted to the front (e.g. [a b c x y z] for LUBM query 2)
// and, within each node, variables with small post-selection cardinalities
// come before large ones ("forcing the attributes with selections or small
// initial cardinalities to come first").
func (c *compiler) globalOrder(d *ghd.GHD) []string {
	var sels, vars []string
	seen := map[string]bool{}
	queue := []*ghd.Node{d.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		var nodeVars []string
		for _, ei := range n.Edges {
			for _, a := range c.patterns[ei].attrs {
				if seen[a.Name] {
					continue
				}
				seen[a.Name] = true
				if a.IsSel {
					sels = append(sels, a.Name)
				} else {
					nodeVars = append(nodeVars, a.Name)
				}
			}
		}
		if c.opts.AttributeReorder {
			sort.SliceStable(nodeVars, func(i, j int) bool {
				return c.varCardinality(nodeVars[i]) < c.varCardinality(nodeVars[j])
			})
		}
		vars = append(vars, nodeVars...)
		queue = append(queue, n.Children...)
	}
	if c.opts.AttributeReorder {
		return append(sels, vars...)
	}
	// Natural order: attributes as first encountered in the BFS, keeping
	// each pattern's subject-predicate-object positions.
	var nat []string
	seen = map[string]bool{}
	queue = []*ghd.Node{d.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, ei := range n.Edges {
			for _, a := range c.patterns[ei].attrs {
				if !seen[a.Name] {
					seen[a.Name] = true
					nat = append(nat, a.Name)
				}
			}
		}
		queue = append(queue, n.Children...)
	}
	return nat
}

// varCardinality estimates a variable's initial cardinality: the smallest
// post-selection size among the relations that contain it.
func (c *compiler) varCardinality(v string) int {
	best := 1 << 30
	for _, info := range c.patterns {
		for _, a := range info.attrs {
			if !a.IsSel && a.Name == v && info.size < best {
				best = info.size
			}
		}
	}
	return best
}

func (c *compiler) buildNode(g *ghd.Node, orderPos map[string]int, parentVars map[string]bool) (*Node, error) {
	n := &Node{}

	// Node attribute order: bag sorted by global order. The bag contains
	// attribute names (vars and selection vertices); recover the Attr
	// metadata from the node's patterns.
	attrByName := map[string]Attr{}
	for _, ei := range g.Edges {
		for _, a := range c.patterns[ei].attrs {
			attrByName[a.Name] = a
		}
	}
	names := append([]string(nil), g.Bag...)
	sort.Slice(names, func(i, j int) bool { return orderPos[names[i]] < orderPos[names[j]] })
	for _, name := range names {
		a, ok := attrByName[name]
		if !ok {
			return nil, fmt.Errorf("plan: bag attribute %q not found in node patterns", name)
		}
		n.Attrs = append(n.Attrs, a)
		if !a.IsSel {
			n.Vars = append(n.Vars, a.Name)
		}
	}

	// Relations with trie level orders: pattern attributes sorted by node
	// position (stable, so repeated variables keep their relative order).
	nodePos := map[string]int{}
	for i, a := range n.Attrs {
		nodePos[a.Name] = i
	}
	for _, ei := range g.Edges {
		info := c.patterns[ei]
		levels := append([]Attr(nil), info.attrs...)
		sort.SliceStable(levels, func(i, j int) bool {
			return nodePos[levels[i].Name] < nodePos[levels[j].Name]
		})
		n.Rels = append(n.Rels, RelRef{
			PatternIdx: info.idx,
			UseTriples: info.useTriples,
			Pred:       info.pred,
			Levels:     levels,
		})
	}

	// Interface with the parent: shared vars, which must form a prefix of
	// this node's variable order for the bottom-up pass to descend child
	// result tries.
	if parentVars != nil {
		for _, v := range n.Vars {
			if parentVars[v] {
				n.Interface = append(n.Interface, v)
			}
		}
		for i, v := range n.Interface {
			if n.Vars[i] != v {
				return nil, fmt.Errorf("plan: interface %v is not a prefix of node vars %v", n.Interface, n.Vars)
			}
		}
	}

	ownVars := map[string]bool{}
	for _, v := range n.Vars {
		ownVars[v] = true
	}
	for _, gc := range g.Children {
		child, err := c.buildNode(gc, orderPos, ownVars)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}

// markPipelined applies Definition 2 restricted to the profitable case: a
// leaf child of the root whose shared variables are a prefix of both
// attribute orders and which carries at least one variable the root does
// not (otherwise the child is a pure semijoin filter and materializing it
// is what we want). At most one child is pipelined, as in the paper.
func markPipelined(root *Node) {
	rootVars := map[string]bool{}
	for _, v := range root.Vars {
		rootVars[v] = true
	}
	for _, child := range root.Children {
		if len(child.Children) != 0 {
			continue
		}
		extra := false
		for _, v := range child.Vars {
			if !rootVars[v] {
				extra = true
				break
			}
		}
		if !extra {
			continue
		}
		if ghd.Pipelineable(root.Vars, child.Vars) {
			child.Pipelined = true
			return
		}
	}
}

// Nodes returns all plan nodes in pre-order, for tests and tools.
func (p *Plan) Nodes() []*Node {
	if p.Root == nil {
		return nil
	}
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}

// String renders the plan for debugging and the ghdviz tool.
func (p *Plan) String() string {
	if p.Empty {
		return "Plan{empty}"
	}
	s := fmt.Sprintf("Plan{order=%v select=%v}\n", p.GlobalOrder, p.Select)
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		s += indent + "node vars=" + fmt.Sprint(n.Vars)
		if len(n.Interface) > 0 {
			s += " iface=" + fmt.Sprint(n.Interface)
		}
		if n.Pipelined {
			s += " pipelined"
		}
		s += " rels="
		for i, r := range n.Rels {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("p%d", r.PatternIdx)
		}
		s += "\n"
		for _, c := range n.Children {
			walk(c, indent+"  ")
		}
	}
	walk(p.Root, "  ")
	return s
}
