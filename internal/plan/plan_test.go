package plan_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/lubm"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/set"
	"repro/internal/store"
)

func t3(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func lubmStore(t *testing.T) *store.Store {
	t.Helper()
	return store.FromTriples(lubm.Generate(lubm.Config{Universities: 1}))
}

func compile(t *testing.T, st *store.Store, text string, opts plan.Options) *plan.Plan {
	t.Helper()
	q, err := query.ParseSPARQL(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := plan.Compile(q, st, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestMissingConstantShortCircuits(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{t3("a", "p", "b")})
	p := compile(t, st, `SELECT ?x WHERE { ?x <p> <zzz> . }`, plan.AllOptimizations)
	if !p.Empty {
		t.Errorf("plan with unknown constant should be Empty")
	}
	p = compile(t, st, `SELECT ?x WHERE { ?x <qqq> ?y . }`, plan.AllOptimizations)
	if !p.Empty {
		t.Errorf("plan with unknown predicate should be Empty")
	}
	if !strings.Contains(p.String(), "empty") {
		t.Errorf("String of empty plan = %q", p.String())
	}
}

func TestSelectionFirstGlobalOrderQuery2(t *testing.T) {
	st := lubmStore(t)
	p := compile(t, st, lubm.Query(2, 1), plan.AllOptimizations)
	// The paper's §III-B1 example: the global order for query 2 is
	// [a b c x y z] — all three selection vertices first.
	if len(p.GlobalOrder) != 6 {
		t.Fatalf("global order = %v", p.GlobalOrder)
	}
	for i := 0; i < 3; i++ {
		if !strings.HasPrefix(p.GlobalOrder[i], "$") {
			t.Errorf("position %d of global order = %q, want a selection vertex (%v)",
				i, p.GlobalOrder[i], p.GlobalOrder)
		}
	}
	for i := 3; i < 6; i++ {
		if strings.HasPrefix(p.GlobalOrder[i], "$") {
			t.Errorf("position %d of global order = %q, want a variable", i, p.GlobalOrder[i])
		}
	}
	// Root node is the triangle.
	if !reflect.DeepEqual(len(p.Root.Rels), 3) || len(p.Root.Children) != 3 {
		t.Errorf("Q2 root shape: %d rels, %d children\n%s", len(p.Root.Rels), len(p.Root.Children), p)
	}
}

func TestNaturalOrderWithoutAttributeReorder(t *testing.T) {
	st := lubmStore(t)
	p := compile(t, st, lubm.Query(14, 1), plan.Options{Layout: set.PolicyAuto})
	// Q14 is type(X, 'UndergraduateStudent'): natural order puts the
	// subject variable X before the selection vertex (the slow plan the
	// +Attribute column of Table I measures against).
	if len(p.GlobalOrder) != 2 {
		t.Fatalf("global order = %v", p.GlobalOrder)
	}
	if p.GlobalOrder[0] != "X" || !strings.HasPrefix(p.GlobalOrder[1], "$") {
		t.Errorf("natural order = %v, want [X $...]", p.GlobalOrder)
	}
	// With reordering the selection comes first.
	p = compile(t, st, lubm.Query(14, 1), plan.AllOptimizations)
	if !strings.HasPrefix(p.GlobalOrder[0], "$") || p.GlobalOrder[1] != "X" {
		t.Errorf("reordered = %v, want [$... X]", p.GlobalOrder)
	}
}

func TestInterfaceIsPrefixOfChildVars(t *testing.T) {
	st := lubmStore(t)
	for _, qn := range lubm.QueryNumbers {
		for _, opts := range []plan.Options{plan.AllOptimizations, {Layout: set.PolicyAuto}} {
			p := compile(t, st, lubm.Query(qn, 1), opts)
			if p.Empty {
				continue
			}
			for _, n := range p.Nodes() {
				for i, v := range n.Interface {
					if n.Vars[i] != v {
						t.Errorf("Q%d: interface %v not a prefix of vars %v", qn, n.Interface, n.Vars)
					}
				}
			}
		}
	}
}

func TestRelationLevelsFollowNodeOrder(t *testing.T) {
	st := lubmStore(t)
	for _, qn := range lubm.QueryNumbers {
		p := compile(t, st, lubm.Query(qn, 1), plan.AllOptimizations)
		if p.Empty {
			continue
		}
		for _, n := range p.Nodes() {
			pos := map[string]int{}
			for i, a := range n.Attrs {
				pos[a.Name] = i
			}
			for _, rel := range n.Rels {
				last := -1
				for _, lv := range rel.Levels {
					at, ok := pos[lv.Name]
					if !ok {
						t.Fatalf("Q%d: level attr %q not in node attrs", qn, lv.Name)
					}
					if at < last {
						t.Errorf("Q%d: relation levels out of node order: %v", qn, rel.Levels)
					}
					last = at
				}
			}
		}
	}
}

func TestPipeliningMarksOnlyProfitableLeafChild(t *testing.T) {
	// Q8-shaped query: root [x,y] with a big leaf child [x,z].
	st := store.FromTriples([]rdf.Triple{
		t3("s1", "member", "d1"), t3("s2", "member", "d1"),
		t3("d1", "sub", "u1"),
		t3("s1", "email", "e1"), t3("s2", "email", "e2"),
	})
	p := compile(t, st, `SELECT ?x ?y ?z WHERE {
	  ?x <member> ?y . ?y <sub> <u1> . ?x <email> ?z .
	}`, plan.Options{Layout: set.PolicyAuto, AttributeReorder: true, Pipelining: true})
	pipelined := 0
	for _, n := range p.Nodes() {
		if n.Pipelined {
			pipelined++
			// A pipelined child must be a leaf with a variable the root
			// does not have.
			if len(n.Children) != 0 {
				t.Errorf("pipelined node has children")
			}
		}
	}
	if pipelined > 1 {
		t.Errorf("more than one pipelined child: %d", pipelined)
	}
	// Without the toggle, nothing is pipelined.
	p = compile(t, st, `SELECT ?x ?y ?z WHERE {
	  ?x <member> ?y . ?y <sub> <u1> . ?x <email> ?z .
	}`, plan.Options{Layout: set.PolicyAuto, AttributeReorder: true})
	for _, n := range p.Nodes() {
		if n.Pipelined {
			t.Errorf("pipelining marked with toggle off")
		}
	}
}

func TestPlanStringRendering(t *testing.T) {
	st := lubmStore(t)
	p := compile(t, st, lubm.Query(2, 1), plan.AllOptimizations)
	s := p.String()
	for _, want := range []string{"order=", "select=[X Y Z]", "node vars="} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestVariablePredicatePlansUseTripleTable(t *testing.T) {
	st := store.FromTriples([]rdf.Triple{t3("a", "p", "b")})
	p := compile(t, st, `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`, plan.AllOptimizations)
	if p.Empty || len(p.Root.Rels) != 1 || !p.Root.Rels[0].UseTriples {
		t.Errorf("variable-predicate plan = %s", p)
	}
	if len(p.Root.Rels[0].Levels) != 3 {
		t.Errorf("triple relation levels = %v", p.Root.Rels[0].Levels)
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	st := lubmStore(t)
	q := &query.BGP{Select: []string{"x"}}
	if _, err := plan.Compile(q, st, plan.AllOptimizations); err == nil {
		t.Errorf("empty BGP accepted")
	}
}
