package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/rdf"
)

// FuzzWALFraming feeds arbitrary bytes through both decode layers: raw
// payload decoding (must never panic or over-allocate) and a full Open over
// a file whose tail is the fuzz input appended to a valid prefix (recovery
// must keep the prefix and never error on garbage tails). It also
// round-trips a batch derived from the input to pin encode/decode identity.
func FuzzWALFraming(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{recPatch, 0})
	f.Add(encodeBatch(testBatch(0)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Raw payload decode never panics; errors are fine.
		if got, err := decodeBatch(data); err == nil {
			// Whatever decoded must re-encode to something that decodes to
			// the same batch (canonical round trip).
			enc := encodeBatch(got)
			again, err := decodeBatch(enc[1:])
			if err != nil {
				t.Fatalf("re-decode of re-encoded batch failed: %v", err)
			}
			if len(got.Ops) != len(again.Ops) || (len(got.Ops) > 0 && !reflect.DeepEqual(got, again)) {
				t.Fatalf("round trip diverged:\nfirst  %+v\nsecond %+v", got, again)
			}
		}

		// 2. Round-trip identity for a batch built from the input bytes.
		b := batchFromBytes(data)
		enc := encodeBatch(b)
		dec, err := decodeBatch(enc[1:])
		if err != nil {
			t.Fatalf("decode(encode(b)) failed: %v", err)
		}
		if len(b.Ops) > 0 && !reflect.DeepEqual(b, dec) {
			t.Fatalf("encode/decode identity broken:\nin  %+v\nout %+v", b, dec)
		}

		// 3. Recovery over valid-prefix + garbage-tail never errors and
		// never loses the prefix.
		dir := t.TempDir()
		path := filepath.Join(dir, "wal")
		l, _, err := Open(path, Policy{Mode: SyncOff}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.AppendPatch(b); err != nil {
			t.Fatal(err)
		}
		l.Sync()
		l.f.Close() // crash: no seal
		fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(data)
		fh.Close()

		var replayed []Batch
		l2, info, err := Open(path, Policy{Mode: SyncOff}, func(rb Batch) error {
			replayed = append(replayed, rb)
			return nil
		})
		if err != nil {
			t.Fatalf("Open over garbage tail errored: %v", err)
		}
		defer l2.Close()
		if info.Records < 1 {
			t.Fatalf("valid prefix lost: recovered %d records", info.Records)
		}
		if !reflect.DeepEqual(replayed[0], b) {
			t.Fatal("prefix record corrupted by recovery")
		}
	})
}

// batchFromBytes deterministically derives a small batch from fuzz input.
func batchFromBytes(data []byte) Batch {
	n := int(1)
	if len(data) > 0 {
		n = 1 + int(data[0])%4
	}
	b := Batch{Ops: make([]Op, 0, n)}
	for i := 0; i < n; i++ {
		pick := func(k int) string {
			if len(data) == 0 {
				return "x"
			}
			lo := (i*3 + k) % len(data)
			hi := lo + 1 + int(data[lo])%8
			if hi > len(data) {
				hi = len(data)
			}
			return string(data[lo:hi])
		}
		op := Op{Delete: i%2 == 1}
		op.Triple = rdf.Triple{
			S: rdf.NewIRI("s:" + pick(0)),
			P: rdf.NewIRI("p:" + pick(1)),
			O: rdf.NewLangLiteral(pick(2), "en"),
		}
		b.Ops = append(b.Ops, op)
	}
	return b
}
