package wal

import (
	"path/filepath"
	"testing"
)

// BenchmarkWALAppend measures one-patch append latency per fsync policy —
// the per-update durability tax the server pays under -fsync=always versus
// group commit versus none.
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []Policy{
		{Mode: SyncAlways},
		{Mode: SyncInterval, Interval: 10_000_000}, // 10ms group commit
		{Mode: SyncOff},
	} {
		b.Run(pol.Mode.String(), func(b *testing.B) {
			l, _, err := Open(filepath.Join(b.TempDir(), "wal"), pol, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := testBatchB()
			var bytes int64
			for _, op := range batch.Ops {
				bytes += int64(len(op.Triple.S.Value) + len(op.Triple.P.Value) + len(op.Triple.O.Value))
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.AppendPatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func testBatchB() Batch {
	var b Batch
	for i := 0; i < 8; i++ {
		b.Ops = append(b.Ops, Op{Triple: testBatch(i).Ops[0].Triple})
	}
	return b
}
