// Package wal implements the write-ahead log of the durability subsystem:
// an append-only file of CRC-framed patch batches, written before a live
// update is published and replayed on boot so the delta overlay survives a
// crash (internal/live keeps it only in memory; compacted bases are
// persisted separately as segment files by internal/segment).
//
// # Format
//
// The log is a flat sequence of frames:
//
//	┌──────────────┬──────────────┬─────────────────────────┐
//	│ length  u32  │ crc32c  u32  │ payload  (length bytes) │
//	└──────────────┴──────────────┴─────────────────────────┘
//
// both integers little-endian, the checksum a CRC-32C (Castagnoli) over the
// payload. The payload's first byte is the record type: a patch batch
// (recPatch, encoded by record.go) or a seal marker (recSeal) appended by a
// clean shutdown. There is no in-place mutation, ever — recovery therefore
// only has to reason about the tail.
//
// # Recovery
//
// Open scans the file frame by frame, replaying every valid patch record
// through the caller's callback. The scan stops at the first frame that is
// torn — short header, implausible length, truncated payload, or checksum
// mismatch — and truncates the file back to the last valid frame boundary:
// a crash mid-append (or a partially synced page) costs exactly the records
// that were never durable, never the whole log. Appends resume at the
// truncation point. Only running off the end of the data counts as torn; a
// real read error (transient I/O fault) aborts Open instead of truncating,
// so a recoverable failure at boot can never delete a valid log suffix.
// The same invariant is defended on the write side: a failed append
// truncates the partial frame back out before the log accepts more
// records, and if that repair fails the log latches (ErrFailed) rather
// than let acknowledged records sit behind garbage.
//
// # Sync policy
//
// SyncAlways fsyncs inside every Append before it returns (each applied
// patch is durable at publish time). SyncInterval is group commit: appends
// return immediately and a background flusher fsyncs at the configured
// interval, bounding loss to one interval's worth of patches. SyncOff never
// fsyncs (the OS flushes on its own schedule) — crash-unsafe, benchmark
// use. All modes write through the same append path; only the fsync
// placement differs.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// SyncMode selects when appended records are fsynced.
type SyncMode uint8

const (
	// SyncAlways fsyncs before every Append returns.
	SyncAlways SyncMode = iota
	// SyncInterval group-commits: a background flusher fsyncs dirty data at
	// Policy.Interval.
	SyncInterval
	// SyncOff never fsyncs; durability is whatever the OS provides.
	SyncOff
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncMode(%d)", uint8(m))
}

// Policy is the fsync policy of a Log.
type Policy struct {
	Mode SyncMode
	// Interval is the group-commit period for SyncInterval; <= 0 defaults
	// to 50ms.
	Interval time.Duration
}

// String renders the policy the way the -fsync flag accepts it.
func (p Policy) String() string {
	if p.Mode == SyncInterval {
		return p.Interval.String()
	}
	return p.Mode.String()
}

// ParsePolicy parses the -fsync flag syntax: "always", "off", or a Go
// duration ("100ms") meaning group commit at that interval.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always", "":
		return Policy{Mode: SyncAlways}, nil
	case "off":
		return Policy{Mode: SyncOff}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return Policy{}, fmt.Errorf("wal: bad fsync policy %q (want always, off, or a positive duration)", s)
	}
	return Policy{Mode: SyncInterval, Interval: d}, nil
}

// crcTable is the Castagnoli table shared by all frames.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeaderSize = 8
	// maxRecordSize bounds one payload; a length field beyond it is treated
	// as a torn tail, not an allocation request.
	maxRecordSize = 1 << 28
)

// RecoverInfo reports what Open found in an existing log.
type RecoverInfo struct {
	// Records is the number of valid patch records replayed.
	Records int
	// Ops is the total operation count across the replayed records.
	Ops int
	// Sealed reports whether the last valid record was a clean-shutdown
	// seal (false after a crash or kill).
	Sealed bool
	// TornBytes is how many trailing bytes were dropped as a torn tail
	// (0 for a cleanly framed log).
	TornBytes int64
}

// Log is an open write-ahead log. Create with Open; all methods are safe
// for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	pol    Policy
	size   int64 // current file size (all frames durable or pending)
	dirty  bool  // bytes written since the last fsync
	sealed bool
	closed bool
	failed bool // a write error left an unrepaired partial frame; appends rejected

	records  atomic.Uint64 // patch records appended this process (excludes replayed)
	bytes    atomic.Int64  // current log size, mirrored for lock-free stats
	syncs    atomic.Uint64
	lastSync atomic.Int64 // unix nanos of the last fsync (0 = never)
	// fsyncHist distributes observed fsync wall times — the latency the
	// SyncAlways write path puts in front of every acknowledged update, and
	// the device signal behind choosing a group-commit interval. Exposed via
	// Stats for the server's /metrics histogram.
	fsyncHist *obs.Hist

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if absent) the log at path, replays every valid
// patch record through replay in append order, truncates any torn tail, and
// returns the log positioned for appends. A replay error aborts the open.
// replay may be nil to skip record delivery (the scan and truncation still
// happen).
func Open(path string, pol Policy, replay func(Batch) error) (*Log, RecoverInfo, error) {
	if pol.Mode == SyncInterval && pol.Interval <= 0 {
		pol.Interval = 50 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, RecoverInfo{}, err
	}
	info, valid, err := scan(f, st.Size(), replay)
	if err != nil {
		f.Close()
		return nil, RecoverInfo{}, err
	}
	if info.TornBytes > 0 {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, RecoverInfo{}, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, RecoverInfo{}, err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, RecoverInfo{}, err
	}
	l := &Log{f: f, path: path, pol: pol, size: valid, sealed: info.Sealed,
		fsyncHist: obs.NewHist(obs.FsyncBuckets())}
	l.bytes.Store(valid)
	if pol.Mode == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, info, nil
}

// scan reads frames from the start of src (total bytes long), replaying
// patch records, and returns the recovery info plus the offset of the first
// invalid byte (the truncation point). Only running off the end of the data
// — io.EOF / io.ErrUnexpectedEOF — counts as a torn tail; any other read
// error is a real I/O failure and aborts the scan, so a transient fault at
// boot never truncates a valid log suffix.
func scan(src io.ReaderAt, total int64, replay func(Batch) error) (RecoverInfo, int64, error) {
	r := io.NewSectionReader(src, 0, total)
	var info RecoverInfo
	var valid int64
	var hdr [frameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // end of data or short header: tail ends here
			}
			return info, valid, fmt.Errorf("wal: reading frame header at offset %d: %w", valid, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordSize || valid+frameHeaderSize+int64(length) > total {
			break // implausible or truncated frame
		}
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // payload cut off: torn tail
			}
			return info, valid, fmt.Errorf("wal: reading payload at offset %d: %w", valid, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break // corrupted payload: everything from here on is suspect
		}
		switch payload[0] {
		case recPatch:
			b, err := decodeBatch(payload[1:])
			if err != nil {
				// A frame that checksums but does not decode means the
				// writer was cut off mid-logic or the format changed; treat
				// it like a torn tail rather than failing the boot.
				info.TornBytes = total - valid
				return info, valid, nil
			}
			if replay != nil {
				if err := replay(b); err != nil {
					return info, valid, fmt.Errorf("wal: replaying record %d: %w", info.Records, err)
				}
			}
			info.Records++
			info.Ops += len(b.Ops)
			info.Sealed = false
		case recSeal:
			info.Sealed = true
		default:
			// Unknown record type from a future version: skip it (the frame
			// is checksummed, so the framing is still trustworthy).
		}
		valid += frameHeaderSize + int64(length)
	}
	info.TornBytes = total - valid
	return info, valid, nil
}

// ErrFailed is returned by appends after a failed write could not be
// repaired: the file may end in a partial frame, so accepting more appends
// would place acknowledged records after garbage that the next recovery
// scan silently truncates. Close and re-Open the log to recover.
var ErrFailed = errors.New("wal: log latched failed after an unrepaired write error; re-open to recover")

// Failed reports whether the log has latched the failed state: some append
// hit a write error that tail repair could not undo, and every append since
// has been rejected with ErrFailed. A failed log can still be read and
// closed; health surfaces should treat the process as unable to persist.
func (l *Log) Failed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// InjectFailure forces the log into the latched-failed state, exactly as if
// an append's write error could not be repaired. Fault-injection hook for
// exercising health surfaces (e.g. /healthz reporting "wal": "failed");
// production code never calls it.
func (l *Log) InjectFailure() {
	l.mu.Lock()
	l.failed = true
	l.mu.Unlock()
}

// AppendPatch appends one patch batch, durable according to the sync
// policy: under SyncAlways the record is on stable storage when AppendPatch
// returns; under SyncInterval it becomes durable within one flush interval.
func (l *Log) AppendPatch(b Batch) error {
	return l.append(encodeBatch(b), true)
}

// Seal appends the clean-shutdown marker and fsyncs. A log whose last
// record is a seal reports Sealed=true on the next Open — recovery can tell
// a clean restart from a crash.
func (l *Log) Seal() error {
	return l.append([]byte{recSeal}, false)
}

func (l *Log) append(payload []byte, isPatch bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	return l.appendLocked(payload, isPatch)
}

func (l *Log) appendLocked(payload []byte, isPatch bool) error {
	if l.failed {
		return ErrFailed
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return l.repairTail(err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return l.repairTail(err)
	}
	l.size += frameHeaderSize + int64(len(payload))
	l.bytes.Store(l.size)
	l.dirty = true
	l.sealed = !isPatch
	if isPatch {
		l.records.Add(1)
	}
	if l.pol.Mode == SyncAlways || !isPatch {
		return l.syncLocked()
	}
	return nil
}

// repairTail restores the frame-boundary invariant after a failed append
// write (e.g. ENOSPC): the file may now end in a partial frame past
// l.size, and a later append landing after that garbage would look durable
// yet be discarded by the next recovery scan, which truncates at the first
// torn frame. Truncate back to the last valid boundary and reposition the
// write offset; if the repair itself fails, latch the log so every further
// append is rejected with ErrFailed instead of risking silent loss.
func (l *Log) repairTail(werr error) error {
	if err := l.f.Truncate(l.size); err != nil {
		l.failed = true
		return fmt.Errorf("wal: append failed (%v); truncate repair failed, log latched: %w", werr, err)
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.failed = true
		return fmt.Errorf("wal: append failed (%v); seek repair failed, log latched: %w", werr, err)
	}
	return werr
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncHist.ObserveDuration(time.Since(start))
	l.dirty = false
	l.syncs.Add(1)
	l.lastSync.Store(time.Now().UnixNano())
	return nil
}

// Reset truncates the log to empty — the post-compaction step, called only
// after the compacted base is durably on disk (segment written and synced):
// from that moment every record in the log is folded into the segment, and
// replaying any stale prefix would be a harmless no-op anyway (patch
// application is idempotent against a base that already contains the
// effect). Counters keep accumulating; only the file restarts.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = 0
	l.bytes.Store(0)
	l.dirty = false
	l.syncs.Add(1)
	l.lastSync.Store(time.Now().UnixNano())
	return nil
}

// Close seals the log (clean-shutdown marker + fsync) and closes the file.
// Safe to call more than once, including concurrently: the closed flag is
// latched under the lock before any shutdown work, so exactly one caller
// stops the flusher and seals; the rest return nil immediately.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.appendLocked([]byte{recSeal}, false)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// flushLoop is the SyncInterval group-commit flusher.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	tick := time.NewTicker(l.pol.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-tick.C:
			l.Sync() // best effort; Append surfaces errors on the write path
		}
	}
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Bytes is the current log file size.
	Bytes int64
	// Records is the number of patch records appended by this process
	// (replayed records are reported by Open's RecoverInfo instead).
	Records uint64
	// Syncs counts fsyncs issued.
	Syncs uint64
	// LastSyncAge is the time since the last fsync (0 if none happened
	// yet).
	LastSyncAge time.Duration
	// Policy is the active fsync policy.
	Policy Policy
	// FsyncLatency distributes observed fsync wall times (seconds).
	FsyncLatency obs.HistSnapshot
	// Failed reports the latched-failed state (see Log.Failed).
	Failed bool
}

// Stats snapshots the counters without taking the append lock.
func (l *Log) Stats() Stats {
	s := Stats{
		Bytes:        l.bytes.Load(),
		Records:      l.records.Load(),
		Syncs:        l.syncs.Load(),
		Policy:       l.pol,
		FsyncLatency: l.fsyncHist.Snapshot(),
		Failed:       l.Failed(),
	}
	if ns := l.lastSync.Load(); ns > 0 {
		s.LastSyncAge = time.Since(time.Unix(0, ns))
	}
	return s
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }
