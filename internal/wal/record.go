package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/rdf"
)

// Record types (payload byte 0).
const (
	// recPatch is a patch batch: uvarint op count, then per op a flags byte
	// (bit0 = delete) followed by the subject, predicate, and object terms
	// (see appendTerm for the term encoding).
	recPatch byte = 1
	// recSeal is the clean-shutdown marker; no payload beyond the type byte.
	recSeal byte = 2
)

// Op is one logged operation. It mirrors live.Op structurally (wal cannot
// import live: live imports wal's types through its Durability hook).
type Op struct {
	// Delete marks a deletion; otherwise the op is an insert.
	Delete bool
	// Triple is the statement inserted or deleted.
	Triple rdf.Triple
}

// Batch is one logged patch batch — the unit of atomicity: a batch is
// replayed entirely or (if its frame is torn) not at all.
type Batch struct {
	Ops []Op
}

// Term encoding: a kind byte whose low 2 bits are the rdf.TermKind, bit 2 =
// has datatype, bit 3 = has lang; then the value as a uvarint-length-
// prefixed string, followed by the datatype and lang strings when their
// bits are set. This mirrors the snapshot format's term encoding
// (internal/store/snapshot.go) without depending on it.
const (
	termKindMask    = 0b0011
	termHasDatatype = 0b0100
	termHasLang     = 0b1000
)

const opFlagDelete = 0b0001

var errBadRecord = errors.New("wal: malformed record")

// encodeBatch serializes b as a recPatch payload.
func encodeBatch(b Batch) []byte {
	// Size estimate: type byte + count + per op ~1 flag byte + 3 terms.
	n := 1 + binary.MaxVarintLen64
	for _, op := range b.Ops {
		n += 1 + termSize(op.Triple.S) + termSize(op.Triple.P) + termSize(op.Triple.O)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, recPatch)
	buf = binary.AppendUvarint(buf, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		var flags byte
		if op.Delete {
			flags |= opFlagDelete
		}
		buf = append(buf, flags)
		buf = appendTerm(buf, op.Triple.S)
		buf = appendTerm(buf, op.Triple.P)
		buf = appendTerm(buf, op.Triple.O)
	}
	return buf
}

func termSize(t rdf.Term) int {
	n := 1 + binary.MaxVarintLen32 + len(t.Value)
	if t.Datatype != "" {
		n += binary.MaxVarintLen32 + len(t.Datatype)
	}
	if t.Lang != "" {
		n += binary.MaxVarintLen32 + len(t.Lang)
	}
	return n
}

func appendTerm(buf []byte, t rdf.Term) []byte {
	kind := byte(t.Kind) & termKindMask
	if t.Datatype != "" {
		kind |= termHasDatatype
	}
	if t.Lang != "" {
		kind |= termHasLang
	}
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(len(t.Value)))
	buf = append(buf, t.Value...)
	if t.Datatype != "" {
		buf = binary.AppendUvarint(buf, uint64(len(t.Datatype)))
		buf = append(buf, t.Datatype...)
	}
	if t.Lang != "" {
		buf = binary.AppendUvarint(buf, uint64(len(t.Lang)))
		buf = append(buf, t.Lang...)
	}
	return buf
}

// decodeBatch parses a recPatch payload (after the type byte). It never
// panics on malformed input — every length is validated against the
// remaining buffer before use.
func decodeBatch(p []byte) (Batch, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return Batch{}, errBadRecord
	}
	p = p[n:]
	// Each op is at least 1 flag byte + 3 minimal terms (2 bytes each);
	// reject counts the remaining bytes cannot possibly hold so a corrupted
	// count cannot drive a huge allocation.
	if count > uint64(len(p))/7 {
		return Batch{}, fmt.Errorf("%w: op count %d exceeds payload", errBadRecord, count)
	}
	b := Batch{Ops: make([]Op, 0, count)}
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return Batch{}, errBadRecord
		}
		flags := p[0]
		p = p[1:]
		var op Op
		op.Delete = flags&opFlagDelete != 0
		var err error
		if op.Triple.S, p, err = decodeTerm(p); err != nil {
			return Batch{}, err
		}
		if op.Triple.P, p, err = decodeTerm(p); err != nil {
			return Batch{}, err
		}
		if op.Triple.O, p, err = decodeTerm(p); err != nil {
			return Batch{}, err
		}
		b.Ops = append(b.Ops, op)
	}
	if len(p) != 0 {
		return Batch{}, fmt.Errorf("%w: %d trailing bytes", errBadRecord, len(p))
	}
	return b, nil
}

func decodeTerm(p []byte) (rdf.Term, []byte, error) {
	if len(p) == 0 {
		return rdf.Term{}, nil, errBadRecord
	}
	kind := p[0]
	p = p[1:]
	var t rdf.Term
	t.Kind = rdf.TermKind(kind & termKindMask)
	if t.Kind > rdf.Blank {
		return rdf.Term{}, nil, fmt.Errorf("%w: term kind %d", errBadRecord, t.Kind)
	}
	var err error
	if t.Value, p, err = decodeString(p); err != nil {
		return rdf.Term{}, nil, err
	}
	if kind&termHasDatatype != 0 {
		if t.Datatype, p, err = decodeString(p); err != nil {
			return rdf.Term{}, nil, err
		}
	}
	if kind&termHasLang != 0 {
		if t.Lang, p, err = decodeString(p); err != nil {
			return rdf.Term{}, nil, err
		}
	}
	return t, p, nil
}

func decodeString(p []byte) (string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return "", nil, errBadRecord
	}
	return string(p[w : w+int(n)]), p[w+int(n):], nil
}
