package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

func testBatch(i int) Batch {
	return Batch{Ops: []Op{
		{Triple: rdf.Triple{
			S: iri("http://example.org/s" + string(rune('a'+i%26))),
			P: iri("http://example.org/p"),
			O: rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		}},
		{Delete: true, Triple: rdf.Triple{
			S: rdf.NewBlank("b1"),
			P: iri("http://example.org/q"),
			O: rdf.NewLangLiteral("hallo", "de"),
		}},
	}}
}

func openCollect(t *testing.T, path string, pol Policy) (*Log, RecoverInfo, []Batch) {
	t.Helper()
	var got []Batch
	l, info, err := Open(path, pol, func(b Batch) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, info, got
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, info, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	if info.Records != 0 || info.TornBytes != 0 {
		t.Fatalf("fresh log recovered %+v", info)
	}
	var want []Batch
	for i := 0; i < 10; i++ {
		b := testBatch(i)
		want = append(want, b)
		if err := l.AppendPatch(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, info, got := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l2.Close()
	if info.Records != 10 || info.Ops != 20 {
		t.Fatalf("recovered %+v, want 10 records / 20 ops", info)
	}
	if !info.Sealed {
		t.Fatal("clean close not reported as sealed")
	}
	if info.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", info.TornBytes)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed batches differ:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestUnsealedAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	if err := l.AppendPatch(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: drop the Log without Close, reopen the file.
	l.f.Close()

	l2, info, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l2.Close()
	if info.Sealed {
		t.Fatal("crashed log reported as sealed")
	}
	if info.Records != 1 {
		t.Fatalf("recovered %d records, want 1", info.Records)
	}
}

// TestTornTailTruncated covers the mid-record crash: the file ends inside a
// frame. Recovery must keep every complete record and truncate the rest.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := l.AppendPatch(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.f.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file 3 bytes into the last frame's payload.
	frames := frameOffsets(t, full)
	cut := frames[len(frames)-1] + frameHeaderSize + 3
	if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, info, got := openCollect(t, path, Policy{Mode: SyncAlways})
	if info.Records != 4 {
		t.Fatalf("recovered %d records, want 4", info.Records)
	}
	if info.TornBytes != cut-frames[len(frames)-1] {
		t.Fatalf("TornBytes = %d, want %d", info.TornBytes, cut-frames[len(frames)-1])
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d batches, want 4", len(got))
	}
	// The torn tail must be gone from disk and appends must resume cleanly.
	if st, _ := os.Stat(path); st.Size() != frames[len(frames)-1] {
		t.Fatalf("file size %d after truncation, want %d", st.Size(), frames[len(frames)-1])
	}
	if err := l2.AppendPatch(testBatch(9)); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3, info, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l3.Close()
	if info.Records != 5 || info.TornBytes != 0 {
		t.Fatalf("after resumed append: %+v, want 5 clean records", info)
	}
}

// TestCorruptCRCTruncated covers bit rot / partial page write inside an
// earlier frame boundary: a frame whose payload no longer matches its CRC
// ends the valid prefix.
func TestCorruptCRCTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := l.AppendPatch(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.f.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames := frameOffsets(t, full)
	// Flip a payload byte of the 4th frame (index 3): frames 0-2 survive,
	// 3 and everything after are dropped.
	full[frames[3]+frameHeaderSize+1] ^= 0xFF
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, info, got := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l2.Close()
	if info.Records != 3 || len(got) != 3 {
		t.Fatalf("recovered %d records (%d replayed), want 3", info.Records, len(got))
	}
	if st, _ := os.Stat(path); st.Size() != frames[3] {
		t.Fatalf("file size %d, want truncation to %d", st.Size(), frames[3])
	}
}

// TestImplausibleLength covers a corrupted length field pointing past the
// end of the file (or at an absurd size) — it must not allocate gigabytes
// or error out, just end the valid prefix.
func TestImplausibleLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	if err := l.AppendPatch(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	l.f.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
	f.Write(hdr[:])
	f.Write([]byte("short"))
	f.Close()

	l2, info, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l2.Close()
	if info.Records != 1 {
		t.Fatalf("recovered %d records, want 1", info.Records)
	}
	if info.TornBytes != frameHeaderSize+5 {
		t.Fatalf("TornBytes = %d, want %d", info.TornBytes, frameHeaderSize+5)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	for i := 0; i < 3; i++ {
		if err := l.AppendPatch(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if st := l.Stats(); st.Bytes != 0 {
		t.Fatalf("Bytes = %d after Reset, want 0", st.Bytes)
	}
	if err := l.AppendPatch(testBatch(7)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, info, got := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l2.Close()
	if info.Records != 1 || len(got) != 1 {
		t.Fatalf("recovered %d records after reset, want 1", info.Records)
	}
	if !reflect.DeepEqual(got[0], testBatch(7)) {
		t.Fatal("post-reset record mismatch")
	}
}

func TestReplayErrorAbortsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	l.AppendPatch(testBatch(0))
	l.Close()

	_, _, err := Open(path, Policy{Mode: SyncAlways}, func(Batch) error {
		return os.ErrInvalid
	})
	if err == nil {
		t.Fatal("Open swallowed the replay error")
	}
}

func TestIntervalPolicySyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncInterval, Interval: 5 * time.Millisecond})
	if err := l.AppendPatch(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("group-commit flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

func TestStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l.Close()
	l.AppendPatch(testBatch(0))
	st := l.Stats()
	if st.Records != 1 {
		t.Fatalf("Records = %d, want 1", st.Records)
	}
	if st.Bytes <= frameHeaderSize {
		t.Fatalf("Bytes = %d, want > header size", st.Bytes)
	}
	if st.Syncs == 0 || st.LastSyncAge <= 0 {
		t.Fatalf("SyncAlways append left Syncs=%d LastSyncAge=%v", st.Syncs, st.LastSyncAge)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{in: "always", want: Policy{Mode: SyncAlways}},
		{in: "", want: Policy{Mode: SyncAlways}},
		{in: "off", want: Policy{Mode: SyncOff}},
		{in: "100ms", want: Policy{Mode: SyncInterval, Interval: 100 * time.Millisecond}},
		{in: "bogus", err: true},
		{in: "-5s", err: true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParsePolicy(%q) error = %v, want error=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestDecodeRejectsHugeOpCount(t *testing.T) {
	// A payload claiming 2^40 ops in 4 bytes must be rejected, not
	// allocated.
	p := binary.AppendUvarint(nil, 1<<40)
	if _, err := decodeBatch(p); err == nil {
		t.Fatal("huge op count accepted")
	}
}

// frameOffsets walks the framing of a raw log image and returns each
// frame's starting offset.
func frameOffsets(t *testing.T, p []byte) []int64 {
	t.Helper()
	var offs []int64
	var off int64
	for off < int64(len(p)) {
		if int64(len(p))-off < frameHeaderSize {
			t.Fatalf("short header at %d", off)
		}
		length := binary.LittleEndian.Uint32(p[off : off+4])
		sum := binary.LittleEndian.Uint32(p[off+4 : off+8])
		end := off + frameHeaderSize + int64(length)
		if end > int64(len(p)) {
			t.Fatalf("frame at %d overruns file", off)
		}
		if crc32.Checksum(p[off+frameHeaderSize:end], crcTable) != sum {
			t.Fatalf("bad CRC at %d", off)
		}
		offs = append(offs, off)
		off = end
	}
	return offs
}

func TestEncodeDecodeEmptyBatch(t *testing.T) {
	enc := encodeBatch(Batch{})
	got, err := decodeBatch(enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 0 {
		t.Fatalf("decoded %d ops from empty batch", len(got.Ops))
	}
	if !bytes.Equal(enc, []byte{recPatch, 0}) {
		t.Fatalf("empty batch encoding = %x", enc)
	}
}

// faultReaderAt serves from data but returns a non-EOF error for any read
// touching offsets >= failAt — a transient I/O fault, not a short file.
type faultReaderAt struct {
	data   []byte
	failAt int64
}

var errDiskFault = errors.New("simulated disk fault")

func (f *faultReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > f.failAt {
		return 0, errDiskFault
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// A real read error during recovery must abort the scan, not be mistaken
// for a torn tail (which Open would then truncate, deleting valid records).
func TestScanIOErrorAbortsNotTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	for i := 0; i < 4; i++ {
		if err := l.AppendPatch(testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Fault in the middle of the file: a clean scan would have replayed all
	// records; the faulty one must error out instead of reporting a tail.
	_, _, err = scan(&faultReaderAt{data: data, failAt: int64(len(data)) / 2}, int64(len(data)), nil)
	if !errors.Is(err, errDiskFault) {
		t.Fatalf("scan over faulty reader: err = %v, want wrapped disk fault", err)
	}
	// The same bytes without the fault still scan cleanly end to end.
	info, valid, err := scan(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 4 || info.TornBytes != 0 || valid != int64(len(data)) {
		t.Fatalf("clean rescan: %+v valid=%d len=%d", info, valid, len(data))
	}
}

// repairTail must truncate a partial frame back out so that records
// appended after a failed write are still found by the next recovery scan.
func TestRepairTailRestoresBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	if err := l.AppendPatch(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	// Simulate ENOSPC mid-frame: garbage bytes past the last valid boundary.
	if _, err := l.f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	werr := errors.New("boom")
	if err := l.repairTail(werr); !errors.Is(err, werr) {
		t.Fatalf("repairTail = %v, want the original write error", err)
	}
	if l.failed {
		t.Fatal("successful repair must not latch the log")
	}
	// The record appended after the repaired failure must survive recovery.
	if err := l.AppendPatch(testBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, got := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l2.Close()
	if len(got) != 2 || info.TornBytes != 0 || !info.Sealed {
		t.Fatalf("recovered %d records, info %+v; want 2 records, no torn tail", len(got), info)
	}
}

// An unrepairable write failure must latch the log: accepting more appends
// would bury acknowledged records behind garbage the next scan discards.
func TestUnrepairedFailureLatchesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	if err := l.AppendPatch(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	l.f.Close() // every write, truncate, and seek now fails
	if err := l.AppendPatch(testBatch(1)); err == nil {
		t.Fatal("append on a dead file succeeded")
	}
	if err := l.AppendPatch(testBatch(2)); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after unrepaired failure = %v, want ErrFailed", err)
	}
}

func TestConcurrentCloseNoPanic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := openCollect(t, path, Policy{Mode: SyncInterval, Interval: time.Millisecond})
	if err := l.AppendPatch(testBatch(0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Close() // must not double-close the flusher channel
		}()
	}
	wg.Wait()
	l2, info, _ := openCollect(t, path, Policy{Mode: SyncAlways})
	defer l2.Close()
	if !info.Sealed {
		t.Fatalf("log not sealed after Close: %+v", info)
	}
}
