// Package repro is a from-scratch Go reproduction of "Old Techniques for
// New Join Algorithms: A Case Study in RDF Processing" (Aberger, Tu,
// Olukotun, Ré — ICDE 2016).
//
// It provides:
//
//   - an EmptyHeaded-style worst-case optimal join engine over RDF data
//     (tries + generic join + GHD plans) with the paper's three classic
//     optimizations individually toggleable (NewEmptyHeaded);
//   - the paper's four comparison engines, modelled per §IV-A2:
//     LogicBlox-like (un-optimized WCOJ), MonetDB-like (pairwise column
//     store), RDF-3X-like and TripleBit-like (specialized RDF engines);
//   - a deterministic LUBM data generator and the benchmark's queries;
//   - N-Triples loading and a SPARQL basic-graph-pattern front end.
//
// Quick start:
//
//	ds := repro.GenerateLUBM(1, 0)
//	eh := repro.NewEmptyHeaded(ds, repro.AllOptimizations)
//	rows, err := repro.Query(eh, ds, repro.LUBMQuery(2, 1))
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/engine/logicblox"
	"repro/internal/engine/monetdb"
	"repro/internal/engine/naive"
	"repro/internal/engine/rdf3x"
	"repro/internal/engine/triplebit"
	"repro/internal/engines"
	"repro/internal/live"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Engine is the common query engine interface: Name plus Open, which
// streams a parsed basic graph pattern's rows through a Cursor.
type Engine = engine.Engine

// Cursor streams a query's dictionary-encoded rows incrementally; see
// engine.Cursor for the contract (Next until io.EOF, exact Truncated,
// Close to abandon early).
type Cursor = engine.Cursor

// ExecOpts bundles per-execution knobs: context cancellation, exact row
// caps, offsets, and intra-query parallelism.
type ExecOpts = engine.ExecOpts

// Result is a dictionary-encoded result set.
type Result = engine.Result

// Execute runs q to completion on e and materializes the result — the
// convenience form of Open + Collect.
func Execute(e Engine, q *BGP) (*Result, error) { return engine.Execute(e, q) }

// Collect drains a cursor (as returned by Engine.Open) into a Result.
func Collect(c Cursor, err error) (*Result, error) { return engine.Collect(c, err) }

// BGP is a parsed basic graph pattern query.
type BGP = query.BGP

// Triple is one RDF statement.
type Triple = rdf.Triple

// Options toggles the EmptyHeaded engine's classic optimizations
// (Table I of the paper).
type Options = core.Options

// AllOptimizations enables every optimization — the configuration
// benchmarked as "EmptyHeaded" in Table II.
var AllOptimizations = core.AllOptimizations

// NoOptimizations disables all of them — the bare worst-case optimal
// engine.
var NoOptimizations = core.NoOptimizations

// Dataset is a dictionary-encoded RDF dataset shared by any number of
// engines: an immutable, fully-indexed base plus a mutable delta overlay
// (internal/live), so it accepts inserts and deletes while existing engines
// keep serving. It is optionally partitioned into subject-hash shards
// (Partition / OpenDataset's WithShards), in which case NewEngineByName
// returns scatter-gather engines over the shard set. Opened with
// WithDataDir it is durable: updates flow through a write-ahead log and
// compactions persist mmap-able segment files (internal/durable); call
// Close on shutdown to seal the log.
type Dataset struct {
	ls  *live.Store
	dur *durable.Store // nil unless opened with WithDataDir
}

func newDataset(st *store.Store) *Dataset {
	ls, err := live.NewStore(st, live.Options{})
	if err != nil {
		// live.NewStore only fails on invalid shard counts; Options{} cannot.
		panic(err)
	}
	return &Dataset{ls: ls}
}

// Partition splits the dataset into n subject-hash shards (triples are
// additionally replicated to their object's shard — see internal/shard for
// the routing rule and its cost). Afterwards NewEngineByName builds
// scatter-gather engines over the shard set; results are indistinguishable
// from unsharded execution. n <= 1 reverts to unsharded engines. Future
// compactions keep the partitioning.
func (d *Dataset) Partition(n int) error {
	if n <= 1 {
		n = 0
	}
	return d.ls.SetShards(n)
}

// Shards returns the shard count (1 when unpartitioned).
func (d *Dataset) Shards() int { return d.ls.Shards() }

// LoadTriples builds a dataset from parsed triples.
func LoadTriples(ts []Triple) *Dataset {
	return newDataset(store.FromTriples(ts))
}

// LoadNTriples parses N-Triples from r and builds a dataset.
func LoadNTriples(r io.Reader) (*Dataset, error) {
	b := store.NewBuilder()
	rd := rdf.NewReader(r)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b.Add(t)
	}
	return newDataset(b.Build()), nil
}

// GenerateLUBM generates the LUBM benchmark dataset at the given scale
// (number of universities; the paper used 1000 ≈ 133M triples) and loads
// it.
func GenerateLUBM(universities int, seed int64) *Dataset {
	b := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: universities, Seed: seed}, b.Add)
	return newDataset(b.Build())
}

// WriteSnapshot serializes the dataset in the binary snapshot format, which
// loads much faster than re-parsing N-Triples (dictionary encoding is
// preserved; derived indexes are rebuilt lazily). Pending updates are
// included: the snapshot holds the overlay, exactly what a rebuilt store
// would.
func (d *Dataset) WriteSnapshot(w io.Writer) error { return d.ls.WriteSnapshot(w) }

// WriteSnapshotFile persists the snapshot to path atomically (write to a
// temp file, fsync, rename), so a crash mid-write never corrupts an
// existing snapshot.
func (d *Dataset) WriteSnapshotFile(path string) error { return d.ls.SnapshotTo(path) }

// LoadSnapshot reads a dataset previously written with WriteSnapshot.
func LoadSnapshot(r io.Reader) (*Dataset, error) {
	st, err := store.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return newDataset(st), nil
}

// NumTriples returns the number of distinct triples visible to queries
// (pending inserts and deletes included).
func (d *Dataset) NumTriples() int { return d.ls.NumTriples() }

// NumTerms returns the dictionary size (distinct RDF terms).
func (d *Dataset) NumTerms() int { return d.ls.Dict().Size() }

// Store exposes the current epoch's immutable base store for advanced
// integrations and the benchmark harness. Pending (uncompacted) updates are
// not reflected in it; Compact folds them in.
func (d *Dataset) Store() *store.Store { return d.ls.Base() }

// Live exposes the underlying live store (epoch, delta and compaction
// introspection beyond the convenience methods below).
func (d *Dataset) Live() *live.Store { return d.ls }

// Durable exposes the durability stack behind a dataset opened with
// WithDataDir — WAL and segment introspection (internal/durable.Stats) and
// the data directory path. Nil for in-memory datasets.
func (d *Dataset) Durable() *durable.Store { return d.dur }

// Close releases the dataset's durable resources: it seals the write-ahead
// log (the clean-shutdown marker boot recovery looks for) and unmaps the
// segment files. A no-op for in-memory datasets; the dataset must not be
// used afterwards if it was durable.
func (d *Dataset) Close() error {
	if d.dur == nil {
		return nil
	}
	return d.dur.Close()
}

// Insert adds triples to the dataset while existing engines keep serving;
// it returns how many were actually absent before. Engines created with
// NewEngineByName observe the change on their next query; the direct
// constructors (NewEmptyHeaded, ...) bind to the base snapshot they were
// built over.
func (d *Dataset) Insert(ts []Triple) (int, error) { return d.ls.Insert(ts) }

// Delete removes triples (tombstoning them over the immutable base),
// returning how many were actually present before.
func (d *Dataset) Delete(ts []Triple) (int, error) { return d.ls.Delete(ts) }

// ApplyPatch applies the N-Triples patch format read from r: one statement
// per line, '+' prefix (or none) inserts, '-' deletes.
func (d *Dataset) ApplyPatch(r io.Reader) (live.ApplyResult, error) {
	p, err := live.ParsePatch(r)
	if err != nil {
		return live.ApplyResult{}, err
	}
	return d.ls.Apply(p)
}

// Compact drains pending updates into a freshly indexed base store swapped
// in atomically under a new epoch; queries running concurrently are
// unaffected.
func (d *Dataset) Compact() error {
	_, err := d.ls.Compact()
	return err
}

// Epoch returns the dataset's compaction epoch (increments per base swap).
func (d *Dataset) Epoch() uint64 { return d.ls.Epoch() }

// NewEmptyHeaded returns the paper's primary engine with the given
// optimization configuration, bound to the dataset's current base snapshot
// (later updates are invisible to it; use NewEngineByName for a live
// engine).
func NewEmptyHeaded(d *Dataset, opts Options) Engine { return core.New(d.ls.Base(), opts) }

// NewLogicBlox returns the LogicBlox-like baseline: worst-case optimal
// joins without EmptyHeaded's layout/plan optimizations.
func NewLogicBlox(d *Dataset) Engine { return logicblox.New(d.ls.Base()) }

// NewMonetDB returns the MonetDB-like baseline: a pairwise column-store
// engine over vertically partitioned tables.
func NewMonetDB(d *Dataset) Engine { return monetdb.New(d.ls.Base()) }

// NewRDF3X returns the RDF-3X-like baseline: six clustered permutation
// indexes with selectivity-driven pairwise joins.
func NewRDF3X(d *Dataset) Engine { return rdf3x.New(d.ls.Base()) }

// NewTripleBit returns the TripleBit-like baseline: per-predicate matrix
// storage with selectivity-driven pairwise joins.
func NewTripleBit(d *Dataset) Engine { return triplebit.New(d.ls.Base()) }

// NewNaive returns the reference engine used as the correctness oracle in
// the test suite. It is slow; use it for validation only.
func NewNaive(d *Dataset) Engine { return naive.New(d.ls.Base()) }

// NewEngineByName builds the named engine (one of EngineNames) over d. It
// is the programmatic form of cmd/rdfq's and the query server's -engine
// selection. The engine is live: it observes Insert/Delete/Compact, and on
// a partitioned dataset it executes by scatter-gather over per-shard
// instances (rebuilt per compaction epoch).
func NewEngineByName(d *Dataset, name string) (Engine, error) {
	return engines.NewLive(name, d.ls)
}

// EngineNames lists the names NewEngineByName accepts.
func EngineNames() []string { return engines.Names() }

// Engines returns one instance of every benchmarked engine (the five rows
// of Table II), in the paper's column order.
func Engines(d *Dataset) []Engine {
	return []Engine{
		NewEmptyHeaded(d, AllOptimizations),
		NewTripleBit(d),
		NewRDF3X(d),
		NewMonetDB(d),
		NewLogicBlox(d),
	}
}

// Parse parses a SPARQL basic-graph-pattern query (PREFIX + SELECT +
// WHERE).
func Parse(sparql string) (*BGP, error) { return query.ParseSPARQL(sparql) }

// MustParse is Parse that panics on error.
func MustParse(sparql string) *BGP { return query.MustParseSPARQL(sparql) }

// LUBMQuery returns the SPARQL text of LUBM query n (one of
// LUBMQueryNumbers), adapted to a dataset with the given number of
// universities.
func LUBMQuery(n, universities int) string { return lubm.Query(n, universities) }

// LUBMQueryNumbers lists the benchmark queries the paper evaluates.
var LUBMQueryNumbers = lubm.QueryNumbers

// Rows is a decoded result: terms instead of dictionary ids.
type Rows struct {
	// Vars is the projection, in SELECT order.
	Vars []string
	// Records holds one term slice per solution.
	Records [][]rdf.Term
}

// Query parses, executes, and decodes a SPARQL query on the given engine.
// The dataset must be the one the engine was built over (it supplies the
// dictionary for decoding). LIMIT/OFFSET clauses in the query text are
// honoured: they map onto the cursor-level ExecOpts caps.
func Query(e Engine, d *Dataset, sparql string) (*Rows, error) {
	q, err := Parse(sparql)
	if err != nil {
		return nil, err
	}
	opts := ExecOpts{Offset: q.Offset}
	if q.HasLimit {
		if q.Limit == 0 {
			return &Rows{Vars: q.Select}, nil
		}
		opts.MaxRows = q.Limit
	}
	res, err := Collect(e.Open(q, opts))
	if err != nil {
		return nil, err
	}
	return &Rows{Vars: res.Vars, Records: res.Decode(d.ls.Dict())}, nil
}
