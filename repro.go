// Package repro is a from-scratch Go reproduction of "Old Techniques for
// New Join Algorithms: A Case Study in RDF Processing" (Aberger, Tu,
// Olukotun, Ré — ICDE 2016).
//
// It provides:
//
//   - an EmptyHeaded-style worst-case optimal join engine over RDF data
//     (tries + generic join + GHD plans) with the paper's three classic
//     optimizations individually toggleable (NewEmptyHeaded);
//   - the paper's four comparison engines, modelled per §IV-A2:
//     LogicBlox-like (un-optimized WCOJ), MonetDB-like (pairwise column
//     store), RDF-3X-like and TripleBit-like (specialized RDF engines);
//   - a deterministic LUBM data generator and the benchmark's queries;
//   - N-Triples loading and a SPARQL basic-graph-pattern front end.
//
// Quick start:
//
//	ds := repro.GenerateLUBM(1, 0)
//	eh := repro.NewEmptyHeaded(ds, repro.AllOptimizations)
//	rows, err := repro.Query(eh, ds, repro.LUBMQuery(2, 1))
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/logicblox"
	"repro/internal/engine/monetdb"
	"repro/internal/engine/naive"
	"repro/internal/engine/rdf3x"
	"repro/internal/engine/triplebit"
	"repro/internal/engines"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/shard"
	"repro/internal/store"
)

// Engine is the common query engine interface: Name plus Open, which
// streams a parsed basic graph pattern's rows through a Cursor.
type Engine = engine.Engine

// Cursor streams a query's dictionary-encoded rows incrementally; see
// engine.Cursor for the contract (Next until io.EOF, exact Truncated,
// Close to abandon early).
type Cursor = engine.Cursor

// ExecOpts bundles per-execution knobs: context cancellation, exact row
// caps, offsets, and intra-query parallelism.
type ExecOpts = engine.ExecOpts

// Result is a dictionary-encoded result set.
type Result = engine.Result

// Execute runs q to completion on e and materializes the result — the
// convenience form of Open + Collect.
func Execute(e Engine, q *BGP) (*Result, error) { return engine.Execute(e, q) }

// Collect drains a cursor (as returned by Engine.Open) into a Result.
func Collect(c Cursor, err error) (*Result, error) { return engine.Collect(c, err) }

// BGP is a parsed basic graph pattern query.
type BGP = query.BGP

// Triple is one RDF statement.
type Triple = rdf.Triple

// Options toggles the EmptyHeaded engine's classic optimizations
// (Table I of the paper).
type Options = core.Options

// AllOptimizations enables every optimization — the configuration
// benchmarked as "EmptyHeaded" in Table II.
var AllOptimizations = core.AllOptimizations

// NoOptimizations disables all of them — the bare worst-case optimal
// engine.
var NoOptimizations = core.NoOptimizations

// Dataset is an immutable, dictionary-encoded RDF dataset shared by any
// number of engines. It is optionally partitioned into subject-hash shards
// (Partition / OpenDataset's WithShards), in which case NewEngineByName
// returns scatter-gather engines over the shard set.
type Dataset struct {
	st   *store.Store
	part *shard.Partitioned
}

// Partition splits the dataset into n subject-hash shards (triples are
// additionally replicated to their object's shard — see internal/shard for
// the routing rule and its cost). Afterwards NewEngineByName builds
// scatter-gather engines over the shard set; results are indistinguishable
// from unsharded execution. n <= 1 reverts to unsharded engines.
func (d *Dataset) Partition(n int) error {
	if n <= 1 {
		d.part = nil
		return nil
	}
	p, err := shard.Partition(d.st, n)
	if err != nil {
		return err
	}
	d.part = p
	return nil
}

// Shards returns the shard count (1 when unpartitioned).
func (d *Dataset) Shards() int {
	if d.part == nil {
		return 1
	}
	return d.part.NumShards()
}

// LoadTriples builds a dataset from parsed triples.
func LoadTriples(ts []Triple) *Dataset {
	return &Dataset{st: store.FromTriples(ts)}
}

// LoadNTriples parses N-Triples from r and builds a dataset.
func LoadNTriples(r io.Reader) (*Dataset, error) {
	b := store.NewBuilder()
	rd := rdf.NewReader(r)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b.Add(t)
	}
	return &Dataset{st: b.Build()}, nil
}

// GenerateLUBM generates the LUBM benchmark dataset at the given scale
// (number of universities; the paper used 1000 ≈ 133M triples) and loads
// it.
func GenerateLUBM(universities int, seed int64) *Dataset {
	b := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: universities, Seed: seed}, b.Add)
	return &Dataset{st: b.Build()}
}

// WriteSnapshot serializes the dataset in the binary snapshot format, which
// loads much faster than re-parsing N-Triples (dictionary encoding is
// preserved; derived indexes are rebuilt lazily).
func (d *Dataset) WriteSnapshot(w io.Writer) error { return d.st.WriteSnapshot(w) }

// LoadSnapshot reads a dataset previously written with WriteSnapshot.
func LoadSnapshot(r io.Reader) (*Dataset, error) {
	st, err := store.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{st: st}, nil
}

// NumTriples returns the number of distinct triples loaded.
func (d *Dataset) NumTriples() int { return d.st.NumTriples() }

// NumTerms returns the dictionary size (distinct RDF terms).
func (d *Dataset) NumTerms() int { return d.st.Dict().Size() }

// Store exposes the underlying store for advanced integrations and the
// benchmark harness.
func (d *Dataset) Store() *store.Store { return d.st }

// NewEmptyHeaded returns the paper's primary engine with the given
// optimization configuration.
func NewEmptyHeaded(d *Dataset, opts Options) Engine { return core.New(d.st, opts) }

// NewLogicBlox returns the LogicBlox-like baseline: worst-case optimal
// joins without EmptyHeaded's layout/plan optimizations.
func NewLogicBlox(d *Dataset) Engine { return logicblox.New(d.st) }

// NewMonetDB returns the MonetDB-like baseline: a pairwise column-store
// engine over vertically partitioned tables.
func NewMonetDB(d *Dataset) Engine { return monetdb.New(d.st) }

// NewRDF3X returns the RDF-3X-like baseline: six clustered permutation
// indexes with selectivity-driven pairwise joins.
func NewRDF3X(d *Dataset) Engine { return rdf3x.New(d.st) }

// NewTripleBit returns the TripleBit-like baseline: per-predicate matrix
// storage with selectivity-driven pairwise joins.
func NewTripleBit(d *Dataset) Engine { return triplebit.New(d.st) }

// NewNaive returns the reference engine used as the correctness oracle in
// the test suite. It is slow; use it for validation only.
func NewNaive(d *Dataset) Engine { return naive.New(d.st) }

// NewEngineByName builds the named engine (one of EngineNames) over d. It
// is the programmatic form of cmd/rdfq's and the query server's -engine
// selection. On a partitioned dataset it returns the scatter-gather
// wrapper over per-shard engine instances.
func NewEngineByName(d *Dataset, name string) (Engine, error) {
	if d.part != nil {
		return engines.NewSharded(name, d.part)
	}
	return engines.New(name, d.st)
}

// EngineNames lists the names NewEngineByName accepts.
func EngineNames() []string { return engines.Names() }

// Engines returns one instance of every benchmarked engine (the five rows
// of Table II), in the paper's column order.
func Engines(d *Dataset) []Engine {
	return []Engine{
		NewEmptyHeaded(d, AllOptimizations),
		NewTripleBit(d),
		NewRDF3X(d),
		NewMonetDB(d),
		NewLogicBlox(d),
	}
}

// Parse parses a SPARQL basic-graph-pattern query (PREFIX + SELECT +
// WHERE).
func Parse(sparql string) (*BGP, error) { return query.ParseSPARQL(sparql) }

// MustParse is Parse that panics on error.
func MustParse(sparql string) *BGP { return query.MustParseSPARQL(sparql) }

// LUBMQuery returns the SPARQL text of LUBM query n (one of
// LUBMQueryNumbers), adapted to a dataset with the given number of
// universities.
func LUBMQuery(n, universities int) string { return lubm.Query(n, universities) }

// LUBMQueryNumbers lists the benchmark queries the paper evaluates.
var LUBMQueryNumbers = lubm.QueryNumbers

// Rows is a decoded result: terms instead of dictionary ids.
type Rows struct {
	// Vars is the projection, in SELECT order.
	Vars []string
	// Records holds one term slice per solution.
	Records [][]rdf.Term
}

// Query parses, executes, and decodes a SPARQL query on the given engine.
// The dataset must be the one the engine was built over (it supplies the
// dictionary for decoding). LIMIT/OFFSET clauses in the query text are
// honoured: they map onto the cursor-level ExecOpts caps.
func Query(e Engine, d *Dataset, sparql string) (*Rows, error) {
	q, err := Parse(sparql)
	if err != nil {
		return nil, err
	}
	opts := ExecOpts{Offset: q.Offset}
	if q.HasLimit {
		if q.Limit == 0 {
			return &Rows{Vars: q.Select}, nil
		}
		opts.MaxRows = q.Limit
	}
	res, err := Collect(e.Open(q, opts))
	if err != nil {
		return nil, err
	}
	return &Rows{Vars: res.Vars, Records: res.Decode(d.st.Dict())}, nil
}
