// Command ghdviz prints the GHD query plans the EmptyHeaded-style engine
// chooses for the LUBM queries, reproducing Figures 2 and 3 of the paper:
//
//	ghdviz -query 2            # Figure 2: triangle root with type children
//	ghdviz -query 4 -compare   # Figure 3: baseline star vs +GHD chain
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lubm"
	"repro/internal/query"
	"repro/internal/store"
)

func main() {
	qn := flag.Int("query", 2, "LUBM query number")
	scale := flag.Int("scale", 1, "LUBM scale used for statistics")
	compare := flag.Bool("compare", false, "show the plan with and without the +GHD/+Attribute optimizations")
	flag.Parse()

	b := store.NewBuilder()
	lubm.GenerateTo(lubm.Config{Universities: *scale}, b.Add)
	st := b.Build()

	q, err := query.ParseSPARQL(lubm.Query(*qn, *scale))
	if err != nil {
		log.Fatalf("ghdviz: %v", err)
	}
	fmt.Printf("LUBM query %d:\n%s\n\n", *qn, q)

	show := func(label string, opts core.Options) {
		eng := core.New(st, opts)
		p, err := eng.Plan(q)
		if err != nil {
			log.Fatalf("ghdviz: plan: %v", err)
		}
		fmt.Printf("--- %s ---\n", label)
		if p.Decomposition != nil {
			fmt.Print(p.Decomposition)
		}
		fmt.Print(p)
		fmt.Println()
	}

	if *compare {
		show("baseline (min fhw, min height; natural attribute order)", core.Options{Layout: true})
		show("+Attribute +GHD (+ selection pushdown)", core.AllOptimizations)
	} else {
		show("chosen plan (all optimizations)", core.AllOptimizations)
	}
}
