// Command rdfq runs a SPARQL basic-graph-pattern query against an
// N-Triples file, a binary snapshot, or a generated LUBM dataset using any
// of the engines:
//
//	rdfq -data graph.nt -engine emptyheaded -query 'SELECT ?x WHERE { ... }'
//	rdfq -lubm 1 -engine rdf3x -lubm-query 2
//	rdfq -data graph.nt -update patch.nt -query '...'   # query the patched overlay
//	rdfq -data graph.nt -update patch.nt -compact ...   # ...compacted into a fresh base
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"slices"
	"strings"

	"repro"
	"repro/internal/obs"
)

func main() {
	data := flag.String("data", "", "N-Triples or snapshot input file (format is sniffed)")
	lubmScale := flag.Int("lubm", 0, "generate a LUBM dataset at this scale instead of loading a file")
	engineName := flag.String("engine", "emptyheaded", "engine: "+strings.Join(repro.EngineNames(), " | "))
	queryText := flag.String("query", "", "SPARQL query text")
	lubmQuery := flag.Int("lubm-query", 0, "run this LUBM benchmark query instead of -query")
	limit := flag.Int("limit", 20, "max rows to print (0 = all; a LIMIT clause in the query tightens this)")
	offset := flag.Int("offset", 0, "skip this many result rows (adds to an OFFSET clause in the query)")
	workers := flag.Int("workers", 0, "intra-query parallelism for the enumeration (0 = engine default)")
	timeout := flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
	shards := flag.Int("shards", 0, "partition the dataset into N subject-hash shards and run by scatter-gather (0/1 = unsharded)")
	update := flag.String("update", "", "apply this N-Triples patch file before querying ('+'/no prefix inserts, '-' deletes)")
	compact := flag.Bool("compact", false, "compact applied updates into a fresh base before querying")
	explain := flag.Bool("explain", false, "print the query's execution trace (span tree, JSON) to stderr after the rows")
	printQuery := flag.Bool("print-query", false, "print the -lubm-query text (adapted to -lubm scale, default 1) and exit without loading data")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	if *version {
		fmt.Printf("rdfq %s\n", obs.Build())
		return
	}

	if *printQuery {
		if !slices.Contains(repro.LUBMQueryNumbers, *lubmQuery) {
			log.Fatalf("rdfq: no LUBM query %d (valid numbers: %v)", *lubmQuery, repro.LUBMQueryNumbers)
		}
		scale := *lubmScale
		if scale == 0 {
			scale = 1
		}
		fmt.Println(repro.LUBMQuery(*lubmQuery, scale))
		return
	}

	var ds *repro.Dataset
	var err error
	switch {
	case *lubmScale > 0:
		ds = repro.GenerateLUBM(*lubmScale, 0)
	case *data != "":
		ds, err = repro.OpenDataset(*data)
		if err != nil {
			log.Fatalf("rdfq: %v", err)
		}
	default:
		log.Fatal("rdfq: provide -data FILE or -lubm SCALE")
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples\n", ds.NumTriples())
	if *shards > 1 {
		if err := ds.Partition(*shards); err != nil {
			log.Fatalf("rdfq: %v", err)
		}
		fmt.Fprintf(os.Stderr, "partitioned into %d subject-hash shards\n", *shards)
	}
	if *update != "" {
		f, err := os.Open(*update)
		if err != nil {
			log.Fatalf("rdfq: %v", err)
		}
		res, err := ds.ApplyPatch(f)
		f.Close()
		if err != nil {
			log.Fatalf("rdfq: %v", err)
		}
		fmt.Fprintf(os.Stderr, "applied %s: +%d -%d (%d no-ops), %d triples visible\n",
			*update, res.Inserted, res.Deleted, res.Noops, ds.NumTriples())
	}
	if *compact {
		if err := ds.Compact(); err != nil {
			log.Fatalf("rdfq: %v", err)
		}
		fmt.Fprintf(os.Stderr, "compacted to epoch %d\n", ds.Epoch())
	}

	eng, err := repro.NewEngineByName(ds, *engineName)
	if err != nil {
		log.Fatalf("rdfq: %v", err)
	}

	text := *queryText
	if *lubmQuery > 0 {
		if !slices.Contains(repro.LUBMQueryNumbers, *lubmQuery) {
			log.Fatalf("rdfq: no LUBM query %d (valid numbers: %v)", *lubmQuery, repro.LUBMQueryNumbers)
		}
		scale := *lubmScale
		if scale == 0 {
			scale = 1
		}
		text = repro.LUBMQuery(*lubmQuery, scale)
	}
	if text == "" {
		log.Fatal("rdfq: provide -query or -lubm-query")
	}

	q, err := repro.Parse(text)
	if err != nil {
		log.Fatalf("rdfq: %v", err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// A LIMIT clause in the query tightens the -limit cap (never widens
	// it), and an OFFSET clause adds to -offset — both land on the same
	// exact cursor-level knobs. LIMIT 0 is a valid query: zero rows.
	effLimit := *limit
	if q.HasLimit {
		if q.Limit == 0 {
			fmt.Println("0 rows (query says LIMIT 0)")
			return
		}
		if effLimit == 0 || q.Limit < effLimit {
			effLimit = q.Limit
		}
	}
	// With -explain, an execute span rides the context: the engines attach
	// their decisions (engine class, scatter plan, per-shard drains) as the
	// query runs, and the tree prints once the cursor is drained.
	var tr *obs.Trace
	var execSp *obs.Span
	if *explain {
		tr = obs.NewTrace(obs.NextQueryID())
		tr.Query, tr.Engine = text, *engineName
		execSp = tr.Root().Child("execute")
		ctx = obs.WithSpan(ctx, execSp)
	}
	// Consume the engine's cursor directly: rows print as the join
	// enumerates them (no result materialization), and the row cap
	// is the cursor's exact MaxRows — hitting it stops the remaining
	// enumeration instead of computing rows nobody will see.
	cur, err := eng.Open(q, repro.ExecOpts{Ctx: ctx, MaxRows: effLimit, Offset: *offset + q.Offset, Workers: *workers})
	if err != nil {
		log.Fatalf("rdfq: %v", err)
	}
	defer cur.Close()
	dict := ds.Store().Dict()
	total := 0
	for {
		row, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("rdfq: %v (after %d rows)", err, total)
		}
		total++
		execSp.AddRows(1)
		for j, id := range row {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Print(dict.Decode(id))
		}
		fmt.Println()
	}
	if cur.Truncated() {
		fmt.Printf("%d rows (truncated by the row cap; more exist)\n", total)
	} else {
		fmt.Printf("%d rows\n", total)
	}
	if tr != nil {
		execSp.End()
		if b, err := json.MarshalIndent(tr.Snapshot(), "", "  "); err == nil {
			fmt.Fprintf(os.Stderr, "%s\n", b)
		}
	}
}
