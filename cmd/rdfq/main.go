// Command rdfq runs a SPARQL basic-graph-pattern query against an
// N-Triples file (or a generated LUBM dataset) using any of the five
// engines:
//
//	rdfq -data graph.nt -engine emptyheaded -query 'SELECT ?x WHERE { ... }'
//	rdfq -lubm 1 -engine rdf3x -lubm-query 2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	data := flag.String("data", "", "N-Triples input file")
	lubmScale := flag.Int("lubm", 0, "generate a LUBM dataset at this scale instead of loading a file")
	engineName := flag.String("engine", "emptyheaded", "engine: emptyheaded | logicblox | monetdb | rdf3x | triplebit | naive")
	queryText := flag.String("query", "", "SPARQL query text")
	lubmQuery := flag.Int("lubm-query", 0, "run this LUBM benchmark query instead of -query")
	limit := flag.Int("limit", 20, "max rows to print (0 = all)")
	flag.Parse()

	var ds *repro.Dataset
	switch {
	case *lubmScale > 0:
		ds = repro.GenerateLUBM(*lubmScale, 0)
	case *data != "":
		f, err := os.Open(*data)
		if err != nil {
			log.Fatalf("rdfq: %v", err)
		}
		defer f.Close()
		// Sniff the format: binary snapshots start with "RDFSNAP1".
		br := bufio.NewReaderSize(f, 1<<16)
		head, _ := br.Peek(8)
		if string(head) == "RDFSNAP1" {
			ds, err = repro.LoadSnapshot(br)
		} else {
			ds, err = repro.LoadNTriples(br)
		}
		if err != nil {
			log.Fatalf("rdfq: %v", err)
		}
	default:
		log.Fatal("rdfq: provide -data FILE or -lubm SCALE")
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples\n", ds.NumTriples())

	var eng repro.Engine
	switch *engineName {
	case "emptyheaded":
		eng = repro.NewEmptyHeaded(ds, repro.AllOptimizations)
	case "logicblox":
		eng = repro.NewLogicBlox(ds)
	case "monetdb":
		eng = repro.NewMonetDB(ds)
	case "rdf3x":
		eng = repro.NewRDF3X(ds)
	case "triplebit":
		eng = repro.NewTripleBit(ds)
	case "naive":
		eng = repro.NewNaive(ds)
	default:
		log.Fatalf("rdfq: unknown engine %q", *engineName)
	}

	text := *queryText
	if *lubmQuery > 0 {
		scale := *lubmScale
		if scale == 0 {
			scale = 1
		}
		text = repro.LUBMQuery(*lubmQuery, scale)
	}
	if text == "" {
		log.Fatal("rdfq: provide -query or -lubm-query")
	}

	rows, err := repro.Query(eng, ds, text)
	if err != nil {
		log.Fatalf("rdfq: %v", err)
	}
	fmt.Printf("%d rows", len(rows.Records))
	fmt.Println()
	for i, rec := range rows.Records {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more)\n", len(rows.Records)-i)
			break
		}
		for j, term := range rec {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Print(term)
		}
		fmt.Println()
	}
}
