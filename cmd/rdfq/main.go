// Command rdfq runs a SPARQL basic-graph-pattern query against an
// N-Triples file, a binary snapshot, or a generated LUBM dataset using any
// of the engines:
//
//	rdfq -data graph.nt -engine emptyheaded -query 'SELECT ?x WHERE { ... }'
//	rdfq -lubm 1 -engine rdf3x -lubm-query 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strings"

	"repro"
)

func main() {
	data := flag.String("data", "", "N-Triples or snapshot input file (format is sniffed)")
	lubmScale := flag.Int("lubm", 0, "generate a LUBM dataset at this scale instead of loading a file")
	engineName := flag.String("engine", "emptyheaded", "engine: "+strings.Join(repro.EngineNames(), " | "))
	queryText := flag.String("query", "", "SPARQL query text")
	lubmQuery := flag.Int("lubm-query", 0, "run this LUBM benchmark query instead of -query")
	limit := flag.Int("limit", 20, "max rows to print (0 = all)")
	flag.Parse()

	var ds *repro.Dataset
	var err error
	switch {
	case *lubmScale > 0:
		ds = repro.GenerateLUBM(*lubmScale, 0)
	case *data != "":
		ds, err = repro.OpenDataset(*data)
		if err != nil {
			log.Fatalf("rdfq: %v", err)
		}
	default:
		log.Fatal("rdfq: provide -data FILE or -lubm SCALE")
	}
	fmt.Fprintf(os.Stderr, "loaded %d triples\n", ds.NumTriples())

	eng, err := repro.NewEngineByName(ds, *engineName)
	if err != nil {
		log.Fatalf("rdfq: %v", err)
	}

	text := *queryText
	if *lubmQuery > 0 {
		if !slices.Contains(repro.LUBMQueryNumbers, *lubmQuery) {
			log.Fatalf("rdfq: no LUBM query %d (valid numbers: %v)", *lubmQuery, repro.LUBMQueryNumbers)
		}
		scale := *lubmScale
		if scale == 0 {
			scale = 1
		}
		text = repro.LUBMQuery(*lubmQuery, scale)
	}
	if text == "" {
		log.Fatal("rdfq: provide -query or -lubm-query")
	}

	rows, err := repro.Query(eng, ds, text)
	if err != nil {
		log.Fatalf("rdfq: %v", err)
	}
	fmt.Printf("%d rows", len(rows.Records))
	fmt.Println()
	for i, rec := range rows.Records {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more)\n", len(rows.Records)-i)
			break
		}
		for j, term := range rec {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Print(term)
		}
		fmt.Println()
	}
}
