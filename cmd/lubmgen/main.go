// Command lubmgen generates LUBM benchmark data as N-Triples, standing in
// for the Java UBA 1.7 generator used by the paper.
//
// Usage:
//
//	lubmgen -scale 5 -seed 0 -o lubm5.nt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/lubm"
	"repro/internal/rdf"
	"repro/internal/store"
)

func main() {
	scale := flag.Int("scale", 1, "number of universities (the paper used 1000)")
	seed := flag.Int64("seed", 0, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "nt", "output format: nt (N-Triples) or snapshot (binary)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("lubmgen: %v", err)
		}
		defer f.Close()
		w = f
	}

	cfg := lubm.Config{Universities: *scale, Seed: *seed}
	count := 0
	switch *format {
	case "nt":
		nw := rdf.NewWriter(w)
		lubm.GenerateTo(cfg, func(t rdf.Triple) {
			if err := nw.Write(t); err != nil {
				log.Fatalf("lubmgen: write: %v", err)
			}
			count++
		})
		if err := nw.Flush(); err != nil {
			log.Fatalf("lubmgen: flush: %v", err)
		}
	case "snapshot":
		b := store.NewBuilder()
		lubm.GenerateTo(cfg, func(t rdf.Triple) {
			b.Add(t)
			count++
		})
		if err := b.Build().WriteSnapshot(w); err != nil {
			log.Fatalf("lubmgen: snapshot: %v", err)
		}
	default:
		log.Fatalf("lubmgen: unknown format %q (want nt or snapshot)", *format)
	}
	fmt.Fprintf(os.Stderr, "lubmgen: wrote %d triples (scale %d, seed %d, format %s)\n", count, *scale, *seed, *format)
}
