package main

// lubmgen also supports the binary snapshot output format (see
// internal/store): `lubmgen -scale 5 -format snapshot -o lubm5.snap`
// produces a file that cmd/rdfq loads without re-parsing or re-encoding.
