// Command benchjson runs the hot-path perf suite (internal/bench.RunPerfSuite)
// and writes the machine-readable report — set intersect/seek kernels, the
// full-store trie rebuild (flat vs pointer reference), Table II WCOJ
// queries, the sharded-vs-unsharded pair, the cold-start boot trajectory
// (N-Triples vs snapshot vs mmap segment), and WAL append throughput per
// fsync policy — as JSON. CI runs it on every
// PR and uploads the file as an artifact; the copy committed at the repo
// root (BENCH_6.json) is the trajectory baseline future PRs diff against.
//
// Usage:
//
//	benchjson [-scale N] [-reps N] [-out FILE] [-seed FILE]
//
// -seed embeds a {"name": ns_per_op} JSON map as the report's
// seed_baseline_ns_per_op section, carrying numbers measured at an earlier
// commit forward into the new file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	scale := flag.Int("scale", 1, "LUBM scale factor (universities)")
	reps := flag.Int("reps", 3, "repetitions per measurement")
	out := flag.String("out", "BENCH_6.json", "output path")
	seed := flag.String("seed", "", "optional JSON map of baseline ns/op to embed")
	flag.Parse()

	report, err := bench.RunPerfSuite(bench.Config{Scale: *scale, Reps: *reps})
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if *seed != "" {
		data, err := os.ReadFile(*seed)
		if err != nil {
			log.Fatalf("benchjson: read seed baseline: %v", err)
		}
		if err := json.Unmarshal(data, &report.SeedBaseline); err != nil {
			log.Fatalf("benchjson: parse seed baseline: %v", err)
		}
	}
	if err := report.WriteJSON(*out); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	for _, r := range report.Results {
		fmt.Printf("%-45s %14.0f ns/op", r.Name, r.NsPerOp)
		if r.Rows > 0 {
			fmt.Printf(" %8d rows", r.Rows)
		}
		fmt.Println()
	}
	for k, v := range report.Derived {
		fmt.Printf("%-45s %14.2fx\n", k, v)
	}
	fmt.Printf("wrote %s\n", *out)
}
