// Command benchjson runs the hot-path perf suite (internal/bench.RunPerfSuite)
// and writes the machine-readable report — set intersect/seek kernels, the
// full-store trie rebuild (flat vs pointer reference), Table II WCOJ
// queries (including the cost-model auto router), the sharded-vs-unsharded
// pairs at 4 and 8 shards (plus a LUBM scale-8 sharded section), the
// cold-start boot trajectory (N-Triples vs snapshot vs mmap segment), and
// WAL append throughput per fsync policy — as JSON. CI runs
// it on every PR, uploads the file as an artifact, and gates the build with
// -compare against the copy committed at the repo root (BENCH_8.json): any
// shared result more than -threshold percent slower than the baseline —
// beyond the repetition noise both reports recorded — exits nonzero.
//
// Usage:
//
//	benchjson [-scale N] [-reps N] [-out FILE] [-seed FILE]
//	          [-compare BASELINE] [-threshold PCT] [-in FILE]
//
// -seed embeds a {"name": ns_per_op} JSON map as the report's
// seed_baseline_ns_per_op section, carrying numbers measured at an earlier
// commit forward into the new file.
//
// -in skips the suite and loads an existing report instead — CI uses this
// to self-test the gate deterministically (compare a report against a
// doctored baseline and assert the expected verdict) without paying for a
// second measurement run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	scale := flag.Int("scale", 1, "LUBM scale factor (universities)")
	reps := flag.Int("reps", 5, "repetitions per measurement")
	out := flag.String("out", "BENCH_8.json", "output path")
	seed := flag.String("seed", "", "optional JSON map of baseline ns/op to embed")
	compare := flag.String("compare", "", "baseline report to gate against; exit 1 on regression")
	threshold := flag.Float64("threshold", 25, "regression threshold percent for -compare")
	in := flag.String("in", "", "load report from file instead of running the suite")
	flag.Parse()

	var report *bench.PerfReport
	var err error
	if *in != "" {
		report, err = bench.ReadPerfReport(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
	} else {
		report, err = bench.RunPerfSuite(bench.Config{Scale: *scale, Reps: *reps})
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		if *seed != "" {
			data, err := os.ReadFile(*seed)
			if err != nil {
				log.Fatalf("benchjson: read seed baseline: %v", err)
			}
			if err := json.Unmarshal(data, &report.SeedBaseline); err != nil {
				log.Fatalf("benchjson: parse seed baseline: %v", err)
			}
		}
		if err := report.WriteJSON(*out); err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		for _, r := range report.Results {
			fmt.Printf("%-45s %14.0f ns/op", r.Name, r.NsPerOp)
			if r.VarPct > 0 {
				fmt.Printf(" ±%5.1f%%", r.VarPct)
			}
			if r.Rows > 0 {
				fmt.Printf(" %8d rows", r.Rows)
			}
			fmt.Println()
		}
		for k, v := range report.Derived {
			fmt.Printf("%-45s %14.2fx\n", k, v)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *compare != "" {
		base, err := bench.ReadPerfReport(*compare)
		if err != nil {
			log.Fatalf("benchjson: read baseline: %v", err)
		}
		regs := bench.Compare(base, report, *threshold)
		if len(regs) > 0 {
			fmt.Print(bench.FormatRegressions(regs))
			log.Fatalf("benchjson: %d result(s) regressed more than %.0f%% vs %s",
				len(regs), *threshold, *compare)
		}
		fmt.Printf("perf gate: no regressions vs %s (threshold %.0f%%)\n", *compare, *threshold)
	}
}
