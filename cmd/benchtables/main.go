// Command benchtables regenerates the paper's evaluation tables on a
// locally generated LUBM dataset:
//
//	benchtables -table 1 -scale 5 -reps 7   # Table I: optimization ablations
//	benchtables -table 2 -scale 5 -reps 7   # Table II: five-engine comparison
//
// Absolute times depend on the machine and scale; the comparison shape
// (who wins, by roughly what factor) is what reproduces the paper. See
// EXPERIMENTS.md for recorded runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 2, "which table to regenerate: 1 or 2")
	scale := flag.Int("scale", 5, "LUBM scale factor (universities)")
	seed := flag.Int64("seed", 0, "generator seed")
	reps := flag.Int("reps", 7, "timed repetitions per query (best/worst dropped)")
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Seed: *seed, Reps: *reps}
	fmt.Fprintf(os.Stderr, "generating LUBM(%d)...\n", *scale)
	start := time.Now()
	st := bench.NewDataset(cfg)
	fmt.Fprintf(os.Stderr, "loaded %d triples in %v\n", st.NumTriples(), time.Since(start).Round(time.Millisecond))

	switch *table {
	case 1:
		rows, err := bench.TableI(st, cfg)
		if err != nil {
			log.Fatalf("benchtables: %v", err)
		}
		fmt.Printf("TABLE I — relative slowdown when disabling each optimization (LUBM scale %d, %d triples)\n",
			*scale, st.NumTriples())
		fmt.Print(bench.FormatTableI(rows))
	case 2:
		rows, names, err := bench.TableII(st, cfg)
		if err != nil {
			log.Fatalf("benchtables: %v", err)
		}
		fmt.Printf("TABLE II — runtime relative to the best engine per query (LUBM scale %d, %d triples)\n",
			*scale, st.NumTriples())
		fmt.Print(bench.FormatTableII(rows, names))
	default:
		log.Fatalf("benchtables: unknown table %d (want 1 or 2)", *table)
	}
}
