// Command rdfserved serves SPARQL queries over HTTP against a dataset
// loaded once at startup (N-Triples file, binary snapshot, or generated
// LUBM scale), using the engines from this repository:
//
//	rdfserved -lubm 1 -addr :8080
//	rdfserved -data graph.nt -max-concurrent 16 -timeout 10s
//
//	curl 'localhost:8080/query?engine=emptyheaded&query=SELECT+?x+WHERE+{...}'
//	curl localhost:8080/stats
//
// The store is live: POST /update applies an N-Triples insert/delete patch
// ('+'/no prefix inserts, '-' deletes) against a delta overlay while
// queries keep serving, and -compact-every periodically drains the delta
// into a freshly indexed base swapped in under a new epoch (-snapshot
// persists it atomically):
//
//	rdfserved -data graph.nt -compact-every 30s -snapshot graph.snap
//	curl -X POST --data-binary $'-<http://a> <http://p> <http://b> .\n' localhost:8080/update
//
// With -data-dir the store is durable: every applied patch is written to a
// write-ahead log (fsynced per -fsync) before it publishes, compactions
// persist the base as an mmap-able segment file, and a restart boots from
// segment + log replay instead of reloading -data (which then only seeds
// the directory on its very first boot; -lubm seeds likewise, and neither
// is required once the directory exists). The server listens immediately
// and answers 503 {"wal_replay":true} until recovery finishes; SIGTERM
// seals the log so the next boot knows the shutdown was clean:
//
//	rdfserved -data graph.nt -data-dir /var/lib/rdf -fsync 50ms -compact-every 30s
//
// Observability: GET /metrics serves Prometheus text exposition, every
// query is traced (?explain=1 returns the span tree, /debug/queries the
// last 128), -slow-query logs queries over the threshold as structured
// records (-log json for machine-readable output), and -debug-addr opens a
// separate ops listener with net/http/pprof.
//
// Distributed serving: workers and a coordinator each load the same
// dataset with the same -shards N; workers serve per-shard drains at
// POST /shard/query, and the coordinator answers /query by fanning shard
// sub-queries out to its fleet with health checking, retries, hedging, and
// graceful partial degradation (internal/cluster):
//
//	rdfserved -lubm 1 -shards 4 -shard-role worker -shard-id 0 -addr :9001
//	rdfserved -lubm 1 -shards 4 -shard-role coordinator \
//	    -cluster-workers http://localhost:9001,http://localhost:9002,http://localhost:9003
//
// With -loadgen it instead acts as a load generator against a running
// server, reporting throughput and latency percentiles:
//
//	rdfserved -loadgen -url http://localhost:8080 -clients 8 -requests 400 -lubm-queries 1,2,8
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // -debug-addr ops listener
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	// Serving flags.
	data := flag.String("data", "", "N-Triples or snapshot input file (format is sniffed)")
	lubmScale := flag.Int("lubm", 0, "generate a LUBM dataset at this scale instead of loading a file")
	addr := flag.String("addr", ":8080", "listen address")
	defEngine := flag.String("engine", "emptyheaded", "default engine for requests without ?engine=: "+strings.Join(repro.EngineNames(), " | "))
	cacheSize := flag.Int("plan-cache", 256, "compiled-plan LRU capacity")
	maxConc := flag.Int("max-concurrent", 0, "max worker-pool slots (0 = GOMAXPROCS); a ?workers=N query holds N")
	maxQueryWorkers := flag.Int("max-query-workers", 0, "ceiling for per-request ?workers= intra-query parallelism (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	queryTimeout := flag.Duration("query-timeout", 0, "hard per-request deadline ceiling capping both -timeout and ?timeout= (0 = none)")
	maxRows := flag.Int("max-rows", 0, "cap rows per query result, marked truncated (0 = default 4M, -1 = uncapped)")
	shards := flag.Int("shards", 0, "partition the store into N subject-hash shards and serve by scatter-gather (0/1 = unsharded)")
	compactEvery := flag.Duration("compact-every", 0, "background-compact the update delta at this interval (0 = only explicit POST /compact)")
	compactMinDelta := flag.Int("compact-min-delta", 0, "skip background compaction while the delta holds fewer operations")
	snapshotPath := flag.String("snapshot", "", "atomically persist the compacted snapshot to this file after every compaction")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + mmap-able base segment); -data/-lubm only seed its first boot")
	fsync := flag.String("fsync", "always", "WAL sync policy: always | off | group-commit interval like 50ms (with -data-dir)")

	// Cluster flags. Workers are symmetric: each loads the same dataset and
	// partitions it with the same deterministic code, so any worker can
	// serve any shard's drain and the coordinator's failover/hedging picks
	// among them freely.
	shardRole := flag.String("shard-role", "", "cluster role: worker (serve /shard/query drains) | coordinator (fan shard drains out to -cluster-workers); empty = standalone")
	shardID := flag.Int("shard-id", -1, "worker: nominal shard index for logs and ops tooling (workers are symmetric and serve every shard)")
	clusterWorkers := flag.String("cluster-workers", "", "coordinator: comma-separated worker base URLs (http://host:port), in shard assignment order")
	shardReplicas := flag.Int("shard-replicas", 0, "coordinator: candidate workers per shard — primary plus failover/hedge targets (0 = default 2)")
	shardAttempts := flag.Int("shard-attempts", 0, "coordinator: retry budget per shard drain (0 = default)")
	shardAttemptTimeout := flag.Duration("shard-attempt-timeout", 0, "coordinator: per-attempt first-byte timeout (0 = default)")
	shardHedgeAfter := flag.Duration("shard-hedge-after", 0, "coordinator: minimum hedge delay; the trigger is max(this, observed first-byte p99) (0 = default, negative disables hedging)")
	shardProbeInterval := flag.Duration("shard-probe-interval", 0, "coordinator: worker /healthz probe interval (0 = default)")

	// Observability flags.
	logFormat := flag.String("log", "text", "log format: text | json")
	slowQuery := flag.Duration("slow-query", 0, "log queries whose total duration exceeds this threshold (0 = off), e.g. 100ms")
	traceSample := flag.Int("trace-sample", 1, "trace every Nth query (1 = all, -1 = none); ?explain=1 always traces")
	debugAddr := flag.String("debug-addr", "", "separate ops listener serving net/http/pprof (empty = off)")
	version := flag.Bool("version", false, "print build version and exit")

	// Loadgen flags.
	loadgen := flag.Bool("loadgen", false, "run as a load generator against -url instead of serving")
	urlFlag := flag.String("url", "http://localhost:8080", "loadgen: server base URL")
	clients := flag.Int("clients", 8, "loadgen: concurrent clients")
	requests := flag.Int("requests", 0, "loadgen: total requests (0 = 100 per client)")
	lgEngine := flag.String("lg-engine", "", "loadgen: ?engine= to request (empty = server default)")
	lgQuery := flag.String("query", "", "loadgen: one SPARQL query text")
	lubmQueries := flag.String("lubm-queries", "", "loadgen: comma-separated LUBM query numbers, e.g. 1,2,8")
	lgScale := flag.Int("scale", 1, "loadgen: LUBM scale the server's dataset was generated at")
	flag.Parse()

	if *version {
		fmt.Printf("rdfserved %s\n", obs.Build())
		return
	}

	var handlerOpt slog.Handler
	switch *logFormat {
	case "json":
		handlerOpt = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handlerOpt = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "rdfserved: bad -log %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handlerOpt)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *loadgen {
		if err := runLoadGen(*urlFlag, *clients, *requests, *lgEngine, *lgQuery, *lubmQueries, *lgScale, *timeout); err != nil {
			fatal("loadgen failed", "error", err)
		}
		return
	}

	if *data == "" && *lubmScale == 0 && *dataDir == "" {
		fatal("provide -data FILE, -lubm SCALE, or an initialized -data-dir DIR")
	}

	if *debugAddr != "" {
		// net/http/pprof registers on the default mux; serving it on its own
		// listener keeps profiling endpoints off the query port.
		go func() {
			logger.Info("debug listener (pprof)", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
	}

	// Listen before loading: boot can be slow (a durable boot replays the
	// WAL; a cold one parses N-Triples and builds indexes), and health
	// checkers want the socket open from the first moment. The boot handler
	// answers 503 on every route until the real handler swaps in.
	var handler atomic.Pointer[http.Handler]
	boot := bootHandler(*dataDir != "")
	handler.Store(&boot)
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	go func() {
		logger.Info("listening (booting)", "addr", *addr, "version", obs.Build().Version, "revision", obs.Build().Revision)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("listen failed", "error", err)
		}
	}()

	var ds *repro.Dataset
	var err error
	start := time.Now()
	switch {
	case *dataDir != "":
		opts := []repro.DatasetOption{repro.WithDataDir(*dataDir), repro.WithFsync(*fsync), repro.WithShards(*shards)}
		if *lubmScale > 0 {
			opts = append(opts, repro.WithLUBM(*lubmScale))
		}
		ds, err = repro.OpenDataset(*data, opts...)
		if err != nil {
			fatal("opening data dir", "dir", *dataDir, "error", err)
		}
		rec := ds.Durable().Recovered()
		logger.Info("opened durable store",
			"dir", *dataDir, "triples", ds.NumTriples(), "took", time.Since(start).Round(time.Millisecond).String(),
			"fsync", *fsync, "replayed_records", rec.Records, "replayed_ops", rec.Ops, "clean_shutdown", rec.Sealed)
	case *lubmScale > 0:
		ds = repro.GenerateLUBM(*lubmScale, 0)
		logger.Info("generated LUBM dataset",
			"scale", *lubmScale, "triples", ds.NumTriples(), "took", time.Since(start).Round(time.Millisecond).String())
	default:
		ds, err = repro.OpenDataset(*data)
		if err != nil {
			fatal("loading dataset", "file", *data, "error", err)
		}
		logger.Info("loaded dataset",
			"file", *data, "triples", ds.NumTriples(), "took", time.Since(start).Round(time.Millisecond).String())
	}

	cfg := server.Config{
		DefaultEngine:   *defEngine,
		PlanCacheSize:   *cacheSize,
		MaxConcurrent:   *maxConc,
		MaxQueryWorkers: *maxQueryWorkers,
		DefaultTimeout:  *timeout,
		MaxRows:         *maxRows,
		CompactEvery:    *compactEvery,
		CompactMinDelta: *compactMinDelta,
		SnapshotPath:    *snapshotPath,
		Logger:          logger,
		SlowQuery:       *slowQuery,
		TraceSample:     *traceSample,
	}
	if ds.Durable() != nil {
		// Hand the replayed live store over as-is — wrapping ds.Store()
		// would silently drop the WAL-replayed delta overlay. Sharding was
		// already applied at open time (WithShards → durable.Options).
		cfg.Live = ds.Live()
		cfg.Durable = ds.Durable()
	} else {
		cfg.Store = ds.Store()
		cfg.Shards = *shards
	}
	cfg.QueryTimeout = *queryTimeout
	var coord *cluster.Coordinator
	switch *shardRole {
	case "":
	case "worker":
		if *shards <= 1 {
			fatal("-shard-role worker requires -shards > 1 (the worker endpoint serves per-shard drains)")
		}
		logger.Info("cluster worker: serving /shard/query drains", "shard_id", *shardID, "shards", *shards)
	case "coordinator":
		if *shards <= 1 {
			fatal("-shard-role coordinator requires -shards > 1")
		}
		var workers []string
		for _, addr := range strings.Split(*clusterWorkers, ",") {
			if a := strings.TrimSpace(addr); a != "" {
				workers = append(workers, a)
			}
		}
		if len(workers) == 0 {
			fatal("-shard-role coordinator requires -cluster-workers URL,URL,...")
		}
		coord, err = cluster.New(cluster.Config{
			Workers:  workers,
			Shards:   *shards,
			Replicas: *shardReplicas,
			Policy: cluster.Policy{
				MaxAttempts:    *shardAttempts,
				AttemptTimeout: *shardAttemptTimeout,
				HedgeAfter:     *shardHedgeAfter,
				ProbeInterval:  *shardProbeInterval,
			},
			Logger: logger,
		})
		if err != nil {
			fatal("configuring cluster", "error", err)
		}
		coord.Start()
		cfg.Cluster = coord
		logger.Info("cluster coordinator: fanning shard drains out to workers",
			"workers", len(workers), "shards", *shards)
	default:
		fatal("bad -shard-role (want worker or coordinator)", "role", *shardRole)
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal("starting server", "error", err)
	}
	if *shards > 1 {
		logger.Info("partitioned into subject-hash shards (scatter-gather execution)", "shards", *shards)
	}
	if *compactEvery > 0 {
		logger.Info("background compactor enabled", "every", compactEvery.String(), "min_delta", *compactMinDelta, "snapshot", *snapshotPath)
	}
	if *slowQuery > 0 {
		logger.Info("slow-query log enabled", "threshold", slowQuery.String())
	}

	ready := srv.Handler()
	handler.Store(&ready)
	logger.Info("serving", "addr", *addr, "default_engine", *defEngine)

	// Graceful shutdown: finish in-flight queries (up to 15s) on SIGINT or
	// SIGTERM, then seal the WAL so the next boot knows the shutdown was
	// clean.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown failed", "error", err)
	}
	srv.Close()
	if coord != nil {
		coord.Close()
	}
	if err := ds.Close(); err != nil {
		logger.Error("closing dataset", "error", err)
	} else if ds.Durable() != nil {
		logger.Info("sealed WAL (clean shutdown)")
	}
	logger.Info("bye")
}

// bootHandler answers every request 503 while the dataset loads (for a
// durable boot, that includes WAL replay): health checkers can tell
// "booting" from "down" without waiting for the store to open.
func bootHandler(walReplay bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "starting", "wal_replay": walReplay})
	})
}

func runLoadGen(url string, clients, requests int, engine, queryText, lubmQueries string, scale int, timeout time.Duration) error {
	var queries []string
	if queryText != "" {
		queries = append(queries, queryText)
	}
	if lubmQueries != "" {
		for _, part := range strings.Split(lubmQueries, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || !slices.Contains(repro.LUBMQueryNumbers, n) {
				return fmt.Errorf("bad -lubm-queries entry %q (valid numbers: %v)", part, repro.LUBMQueryNumbers)
			}
			queries = append(queries, repro.LUBMQuery(n, scale))
		}
	}
	if len(queries) == 0 {
		return errors.New("loadgen: provide -query or -lubm-queries")
	}
	report, err := bench.RunLoadGen(context.Background(), bench.LoadGenConfig{
		URL:      url,
		Queries:  queries,
		Engine:   engine,
		Clients:  clients,
		Requests: requests,
		Timeout:  timeout,
	})
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	if report.Errors > 0 {
		return fmt.Errorf("%d requests failed", report.Errors)
	}
	return nil
}
