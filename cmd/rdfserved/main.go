// Command rdfserved serves SPARQL queries over HTTP against a dataset
// loaded once at startup (N-Triples file, binary snapshot, or generated
// LUBM scale), using the engines from this repository:
//
//	rdfserved -lubm 1 -addr :8080
//	rdfserved -data graph.nt -max-concurrent 16 -timeout 10s
//
//	curl 'localhost:8080/query?engine=emptyheaded&query=SELECT+?x+WHERE+{...}'
//	curl localhost:8080/stats
//
// The store is live: POST /update applies an N-Triples insert/delete patch
// ('+'/no prefix inserts, '-' deletes) against a delta overlay while
// queries keep serving, and -compact-every periodically drains the delta
// into a freshly indexed base swapped in under a new epoch (-snapshot
// persists it atomically):
//
//	rdfserved -data graph.nt -compact-every 30s -snapshot graph.snap
//	curl -X POST --data-binary $'-<http://a> <http://p> <http://b> .\n' localhost:8080/update
//
// With -loadgen it instead acts as a load generator against a running
// server, reporting throughput and latency percentiles:
//
//	rdfserved -loadgen -url http://localhost:8080 -clients 8 -requests 400 -lubm-queries 1,2,8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/server"
)

func main() {
	// Serving flags.
	data := flag.String("data", "", "N-Triples or snapshot input file (format is sniffed)")
	lubmScale := flag.Int("lubm", 0, "generate a LUBM dataset at this scale instead of loading a file")
	addr := flag.String("addr", ":8080", "listen address")
	defEngine := flag.String("engine", "emptyheaded", "default engine for requests without ?engine=: "+strings.Join(repro.EngineNames(), " | "))
	cacheSize := flag.Int("plan-cache", 256, "compiled-plan LRU capacity")
	maxConc := flag.Int("max-concurrent", 0, "max worker-pool slots (0 = GOMAXPROCS); a ?workers=N query holds N")
	maxQueryWorkers := flag.Int("max-query-workers", 0, "ceiling for per-request ?workers= intra-query parallelism (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	maxRows := flag.Int("max-rows", 0, "cap rows per query result, marked truncated (0 = default 4M, -1 = uncapped)")
	shards := flag.Int("shards", 0, "partition the store into N subject-hash shards and serve by scatter-gather (0/1 = unsharded)")
	compactEvery := flag.Duration("compact-every", 0, "background-compact the update delta at this interval (0 = only explicit POST /compact)")
	compactMinDelta := flag.Int("compact-min-delta", 0, "skip background compaction while the delta holds fewer operations")
	snapshotPath := flag.String("snapshot", "", "atomically persist the compacted snapshot to this file after every compaction")

	// Loadgen flags.
	loadgen := flag.Bool("loadgen", false, "run as a load generator against -url instead of serving")
	urlFlag := flag.String("url", "http://localhost:8080", "loadgen: server base URL")
	clients := flag.Int("clients", 8, "loadgen: concurrent clients")
	requests := flag.Int("requests", 0, "loadgen: total requests (0 = 100 per client)")
	lgEngine := flag.String("lg-engine", "", "loadgen: ?engine= to request (empty = server default)")
	lgQuery := flag.String("query", "", "loadgen: one SPARQL query text")
	lubmQueries := flag.String("lubm-queries", "", "loadgen: comma-separated LUBM query numbers, e.g. 1,2,8")
	lgScale := flag.Int("scale", 1, "loadgen: LUBM scale the server's dataset was generated at")
	flag.Parse()

	if *loadgen {
		if err := runLoadGen(*urlFlag, *clients, *requests, *lgEngine, *lgQuery, *lubmQueries, *lgScale, *timeout); err != nil {
			log.Fatalf("rdfserved: %v", err)
		}
		return
	}

	var ds *repro.Dataset
	var err error
	switch {
	case *lubmScale > 0:
		start := time.Now()
		ds = repro.GenerateLUBM(*lubmScale, 0)
		log.Printf("generated LUBM scale %d: %d triples in %v", *lubmScale, ds.NumTriples(), time.Since(start).Round(time.Millisecond))
	case *data != "":
		start := time.Now()
		ds, err = repro.OpenDataset(*data)
		if err != nil {
			log.Fatalf("rdfserved: %v", err)
		}
		log.Printf("loaded %s: %d triples in %v", *data, ds.NumTriples(), time.Since(start).Round(time.Millisecond))
	default:
		log.Fatal("rdfserved: provide -data FILE or -lubm SCALE")
	}

	srv, err := server.New(server.Config{
		Store:           ds.Store(),
		DefaultEngine:   *defEngine,
		PlanCacheSize:   *cacheSize,
		MaxConcurrent:   *maxConc,
		MaxQueryWorkers: *maxQueryWorkers,
		DefaultTimeout:  *timeout,
		MaxRows:         *maxRows,
		Shards:          *shards,
		CompactEvery:    *compactEvery,
		CompactMinDelta: *compactMinDelta,
		SnapshotPath:    *snapshotPath,
	})
	if err != nil {
		log.Fatalf("rdfserved: %v", err)
	}
	defer srv.Close()
	if *shards > 1 {
		log.Printf("partitioned into %d subject-hash shards (scatter-gather execution)", *shards)
	}
	if *compactEvery > 0 {
		log.Printf("background compactor: every %v (min delta %d, snapshot %q)", *compactEvery, *compactMinDelta, *snapshotPath)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("serving on %s (default engine %s)", *addr, *defEngine)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("rdfserved: %v", err)
		}
	}()

	// Graceful shutdown: finish in-flight queries (up to 15s) on SIGINT or
	// SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Print("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("rdfserved: shutdown: %v", err)
	}
	log.Print("bye")
}

func runLoadGen(url string, clients, requests int, engine, queryText, lubmQueries string, scale int, timeout time.Duration) error {
	var queries []string
	if queryText != "" {
		queries = append(queries, queryText)
	}
	if lubmQueries != "" {
		for _, part := range strings.Split(lubmQueries, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || !slices.Contains(repro.LUBMQueryNumbers, n) {
				return fmt.Errorf("bad -lubm-queries entry %q (valid numbers: %v)", part, repro.LUBMQueryNumbers)
			}
			queries = append(queries, repro.LUBMQuery(n, scale))
		}
	}
	if len(queries) == 0 {
		return errors.New("loadgen: provide -query or -lubm-queries")
	}
	report, err := bench.RunLoadGen(context.Background(), bench.LoadGenConfig{
		URL:      url,
		Queries:  queries,
		Engine:   engine,
		Clients:  clients,
		Requests: requests,
		Timeout:  timeout,
	})
	if err != nil {
		return err
	}
	fmt.Print(report.String())
	if report.Errors > 0 {
		return fmt.Errorf("%d requests failed", report.Errors)
	}
	return nil
}
