#!/usr/bin/env bash
# cluster_chaos.sh — end-to-end chaos check for distributed serving.
#
# Boots a 3-worker + coordinator rdfserved cluster on localhost over the
# same scale-1 LUBM dataset, proves the coordinator's answers match a
# worker's local scatter-gather answers on the LUBM conformance queries,
# then SIGKILLs one worker while a loadgen run is in flight and asserts:
#
#   1. the loadgen completes with zero failed requests (replicas=2: every
#      shard stays reachable through its failover candidate);
#   2. a query issued after the kill still answers 200 — either with the
#      full result or honestly flagged `"partial"`, never a 500;
#   3. the coordinator's /metrics shows rdf_shard_retries_total > 0 and
#      the killed worker's breaker open (rdf_worker_up 0).
#
# Needs only bash, curl, and the repo's Go toolchain. Exits nonzero on the
# first violated assertion.
set -euo pipefail

cd "$(dirname "$0")/.."

SHARDS=3
SCALE=1
BASE_PORT=${BASE_PORT:-9301}
COORD_PORT=$((BASE_PORT + SHARDS))
QUERIES=${QUERIES:-"1 2 4 8 14"} # conformance subset: point lookups, the cyclic Q2, star joins, a full scan
TMP=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

log() { echo "[chaos] $*"; }

fail() {
  echo "[chaos] FAIL: $*" >&2
  for f in "$TMP"/worker*.log "$TMP"/coordinator.log; do
    [ -f "$f" ] && {
      echo "---- $f (tail) ----" >&2
      tail -n 20 "$f" >&2
    }
  done
  exit 1
}

wait_healthy() { # url name
  for _ in $(seq 1 200); do
    if curl -fsS -o /dev/null --max-time 2 "$1/healthz" 2>/dev/null; then
      return 0
    fi
    sleep 0.25
  done
  fail "$2 never became healthy at $1"
}

log "building rdfserved and rdfq"
go build -o "$TMP/rdfserved" ./cmd/rdfserved
go build -o "$TMP/rdfq" ./cmd/rdfq

WORKER_URLS=""
for i in $(seq 0 $((SHARDS - 1))); do
  port=$((BASE_PORT + i))
  "$TMP/rdfserved" -lubm $SCALE -shards $SHARDS -shard-role worker -shard-id "$i" \
    -addr "127.0.0.1:$port" -max-rows -1 >"$TMP/worker$i.log" 2>&1 &
  PIDS+=($!)
  disown $! # keep bash from reporting the eventual SIGKILL
  WORKER_URLS="$WORKER_URLS,http://127.0.0.1:$port"
done
WORKER_URLS=${WORKER_URLS#,}

"$TMP/rdfserved" -lubm $SCALE -shards $SHARDS -shard-role coordinator \
  -cluster-workers "$WORKER_URLS" -shard-replicas 2 -shard-probe-interval 250ms \
  -addr "127.0.0.1:$COORD_PORT" -max-rows -1 >"$TMP/coordinator.log" 2>&1 &
PIDS+=($!)
disown $!

for i in $(seq 0 $((SHARDS - 1))); do
  wait_healthy "http://127.0.0.1:$((BASE_PORT + i))" "worker $i"
done
wait_healthy "http://127.0.0.1:$COORD_PORT" "coordinator"
log "cluster up: $SHARDS workers + coordinator on 127.0.0.1:$COORD_PORT"

# --- Conformance: coordinator answers ≡ a worker's local scatter-gather ---
query_tsv() { # port queryfile outfile
  curl -fsS --max-time 60 --get "http://127.0.0.1:$1/query" \
    --data-urlencode "query@$2" --data-urlencode "format=tsv" \
    --data-urlencode "engine=emptyheaded" | sort >"$3"
}
for q in $QUERIES; do
  "$TMP/rdfq" -print-query -lubm-query "$q" -lubm $SCALE >"$TMP/q$q.rq"
  query_tsv "$BASE_PORT" "$TMP/q$q.rq" "$TMP/q$q.local"
  query_tsv "$COORD_PORT" "$TMP/q$q.rq" "$TMP/q$q.cluster"
  if ! cmp -s "$TMP/q$q.local" "$TMP/q$q.cluster"; then
    fail "LUBM Q$q: coordinator rows differ from local scatter-gather ($(wc -l <"$TMP/q$q.cluster") vs $(wc -l <"$TMP/q$q.local"))"
  fi
  log "LUBM Q$q conforms ($(wc -l <"$TMP/q$q.cluster") rows)"
done

# --- Chaos: SIGKILL one worker mid-loadgen ---
VICTIM_IDX=1
VICTIM_PID=${PIDS[$VICTIM_IDX]}
log "starting loadgen, then SIGKILLing worker $VICTIM_IDX (pid $VICTIM_PID) mid-run"
"$TMP/rdfserved" -loadgen -url "http://127.0.0.1:$COORD_PORT" \
  -clients 4 -requests 200 -lubm-queries 1,4,8 -scale $SCALE >"$TMP/loadgen.log" 2>&1 &
LG_PID=$!
sleep 1
kill -9 "$VICTIM_PID"
if ! wait "$LG_PID"; then
  cat "$TMP/loadgen.log" >&2
  fail "loadgen reported failed requests after the worker kill (failover should have absorbed it)"
fi
log "loadgen completed cleanly through the kill:"
grep -E "requests|p99" "$TMP/loadgen.log" | head -4 || true

# --- Post-kill: full-or-flagged-partial, never a 500 ---
code=$(curl -s -o "$TMP/postkill.json" -w '%{http_code}' --max-time 60 --get \
  "http://127.0.0.1:$COORD_PORT/query" --data-urlencode "query@$TMP/q1.rq")
if [ "$code" != 200 ]; then
  cat "$TMP/postkill.json" >&2
  fail "post-kill query answered $code, want 200 (full or flagged partial)"
fi
if grep -q '"partial"' "$TMP/postkill.json"; then
  log "post-kill query honestly flagged partial"
else
  log "post-kill query still answers the full result (failover)"
fi

# --- Metrics: the recovery left a trace ---
curl -fsS --max-time 10 "http://127.0.0.1:$COORD_PORT/metrics" >"$TMP/metrics.txt"
retries=$(awk '$1 == "rdf_shard_retries_total" {print int($2)}' "$TMP/metrics.txt")
if [ -z "$retries" ] || [ "$retries" -lt 1 ]; then
  fail "rdf_shard_retries_total = '${retries:-missing}', want >= 1 after the worker kill"
fi
log "rdf_shard_retries_total = $retries"
if ! grep -q 'rdf_worker_up{.*state="down".*} 0' "$TMP/metrics.txt"; then
  fail "killed worker not reported down in rdf_worker_up"
fi
log "killed worker's breaker reported down in /metrics"

log "PASS: conformance held, kill absorbed, retries surfaced in metrics"
