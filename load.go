package repro

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// snapshotMagic is the 8-byte header of the binary snapshot format (see
// internal/store.WriteSnapshot); LoadDataset uses it to sniff the input
// format.
const snapshotMagic = "RDFSNAP1"

// LoadDataset reads a dataset from r, sniffing the format: binary snapshots
// (written by WriteSnapshot or cmd/lubmgen) are recognized by their magic
// header, anything else is parsed as N-Triples. This is the shared loading
// path of cmd/rdfq and cmd/rdfserved.
func LoadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(len(snapshotMagic))
	if string(head) == snapshotMagic {
		return LoadSnapshot(br)
	}
	return LoadNTriples(br)
}

// DatasetOption customizes OpenDataset.
type DatasetOption func(*datasetOptions)

type datasetOptions struct {
	shards int
}

// WithShards partitions the loaded dataset into n subject-hash shards (see
// Dataset.Partition). n <= 1 is a no-op.
func WithShards(n int) DatasetOption {
	return func(o *datasetOptions) { o.shards = n }
}

// OpenDataset opens the file at path, loads it with LoadDataset, and
// applies the options (e.g. WithShards).
func OpenDataset(path string, opts ...DatasetOption) (*Dataset, error) {
	var o datasetOptions
	for _, opt := range opts {
		opt(&o)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := LoadDataset(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if o.shards > 1 {
		if err := ds.Partition(o.shards); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return ds, nil
}
