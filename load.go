package repro

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/durable"
	"repro/internal/lubm"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/wal"
)

// snapshotMagic is the 8-byte header of the binary snapshot format (see
// internal/store.WriteSnapshot); LoadDataset uses it to sniff the input
// format.
const snapshotMagic = "RDFSNAP1"

// loadStore reads a store from r, sniffing the format: binary snapshots by
// their magic header, anything else as N-Triples.
func loadStore(r io.Reader) (*store.Store, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(len(snapshotMagic))
	if string(head) == snapshotMagic {
		return store.ReadSnapshot(br)
	}
	b := store.NewBuilder()
	rd := rdf.NewReader(br)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b.Add(t)
	}
	return b.Build(), nil
}

// LoadDataset reads a dataset from r, sniffing the format: binary snapshots
// (written by WriteSnapshot or cmd/lubmgen) are recognized by their magic
// header, anything else is parsed as N-Triples. This is the shared loading
// path of cmd/rdfq and cmd/rdfserved.
func LoadDataset(r io.Reader) (*Dataset, error) {
	st, err := loadStore(r)
	if err != nil {
		return nil, err
	}
	return newDataset(st), nil
}

// DatasetOption customizes OpenDataset.
type DatasetOption func(*datasetOptions)

type datasetOptions struct {
	shards   int
	dataDir  string
	fsync    string
	lubmUniv int
}

// WithShards partitions the loaded dataset into n subject-hash shards (see
// Dataset.Partition). n <= 1 is a no-op.
func WithShards(n int) DatasetOption {
	return func(o *datasetOptions) { o.shards = n }
}

// WithDataDir makes the dataset durable, bound to the data directory at
// dir (see internal/durable): when the directory already holds a base
// segment, it is mmap'd and the write-ahead log's surviving patches are
// replayed over it — the input file is then ignored entirely (the segment
// is the newer truth, and loading it skips parsing, dictionary encoding,
// and index building). Only on first boot does the input seed the
// directory; OpenDataset then accepts an empty path, meaning start empty.
// All later Insert/Delete/ApplyPatch calls are logged before they publish,
// and every Compact persists a fresh segment; call Dataset.Close on
// shutdown to seal the log.
func WithDataDir(dir string) DatasetOption {
	return func(o *datasetOptions) { o.dataDir = dir }
}

// WithFsync sets the durable write-ahead log's sync policy: "always"
// (default — every applied patch is on disk before the call returns),
// "off" (the OS decides), or a Go duration like "50ms" (group commit at
// that interval). Only meaningful together with WithDataDir.
func WithFsync(policy string) DatasetOption {
	return func(o *datasetOptions) { o.fsync = policy }
}

// WithLUBM seeds a first-boot durable data directory by generating the
// LUBM benchmark dataset at the given scale instead of reading the input
// file. Ignored once the directory is initialized. Only meaningful
// together with WithDataDir (without one, use GenerateLUBM).
func WithLUBM(universities int) DatasetOption {
	return func(o *datasetOptions) { o.lubmUniv = universities }
}

// OpenDataset opens the file at path, loads it with LoadDataset, and
// applies the options. With WithDataDir the dataset is durable and path is
// only the first boot's seed — see WithDataDir.
func OpenDataset(path string, opts ...DatasetOption) (*Dataset, error) {
	var o datasetOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.dataDir != "" {
		return openDurable(path, o)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := LoadDataset(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if o.shards > 1 {
		if err := ds.Partition(o.shards); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return ds, nil
}

// openDurable opens (or initializes) the durable data directory. The
// bootstrap closure runs only when the directory holds no segment yet.
func openDurable(path string, o datasetOptions) (*Dataset, error) {
	pol, err := wal.ParsePolicy(o.fsync)
	if err != nil {
		return nil, err
	}
	bootstrap := func() (*store.Store, error) {
		switch {
		case o.lubmUniv > 0:
			b := store.NewBuilder()
			lubm.GenerateTo(lubm.Config{Universities: o.lubmUniv}, b.Add)
			return b.Build(), nil
		case path != "":
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			st, err := loadStore(f)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return st, nil
		default:
			return store.FromTriples(nil), nil
		}
	}
	d, err := durable.Open(o.dataDir, bootstrap, durable.Options{Fsync: pol, Shards: o.shards})
	if err != nil {
		return nil, err
	}
	return &Dataset{ls: d.Live(), dur: d}, nil
}
