package repro

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// snapshotMagic is the 8-byte header of the binary snapshot format (see
// internal/store.WriteSnapshot); LoadDataset uses it to sniff the input
// format.
const snapshotMagic = "RDFSNAP1"

// LoadDataset reads a dataset from r, sniffing the format: binary snapshots
// (written by WriteSnapshot or cmd/lubmgen) are recognized by their magic
// header, anything else is parsed as N-Triples. This is the shared loading
// path of cmd/rdfq and cmd/rdfserved.
func LoadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(len(snapshotMagic))
	if string(head) == snapshotMagic {
		return LoadSnapshot(br)
	}
	return LoadNTriples(br)
}

// OpenDataset opens the file at path and loads it with LoadDataset.
func OpenDataset(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := LoadDataset(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ds, nil
}
