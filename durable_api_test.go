package repro_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/rdf"
)

// TestOpenDatasetDurable exercises the public durable lifecycle: seed a
// data directory from an N-Triples file, write through the WAL, restart
// from segment + log (the input file must not be re-read), and observe a
// compaction truncating the log.
func TestOpenDatasetDurable(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "seed.nt")
	if err := os.WriteFile(nt, []byte(apiTestData), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")

	ds, err := repro.OpenDataset(nt, repro.WithDataDir(dataDir), repro.WithFsync("always"))
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	if ds.Durable() == nil {
		t.Fatal("WithDataDir produced a non-durable dataset")
	}
	seeded := ds.NumTriples()
	if seeded == 0 {
		t.Fatal("seed file not loaded")
	}
	ins := repro.Triple{S: rdf.NewIRI("http://ex/x"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/y")}
	if _, err := ds.Insert([]repro.Triple{ins}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: the seed file is deliberately deleted — an initialized
	// directory must boot without it, and the logged insert must survive.
	if err := os.Remove(nt); err != nil {
		t.Fatal(err)
	}
	ds2, err := repro.OpenDataset("", repro.WithDataDir(dataDir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ds2.Close()
	if got := ds2.NumTriples(); got != seeded+1 {
		t.Fatalf("reopened dataset holds %d triples, want %d", got, seeded+1)
	}
	if !ds2.Durable().Recovered().Sealed {
		t.Fatal("clean Close did not seal the log")
	}
	if ds2.Durable().Recovered().Records != 1 {
		t.Fatalf("replayed %d records, want 1", ds2.Durable().Recovered().Records)
	}

	// Compaction folds the delta into a fresh segment and empties the WAL.
	if err := ds2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := ds2.Durable().Stats(); st.WAL.Bytes != 0 || st.CompactionsPersisted != 1 {
		t.Fatalf("after compact: wal bytes %d, persisted %d, want 0/1", st.WAL.Bytes, st.CompactionsPersisted)
	}
}

// TestOpenDatasetDurableSharded checks WithShards composes with WithDataDir
// (partitioning is applied at open, over the recovered overlay).
func TestOpenDatasetDurableSharded(t *testing.T) {
	dir := t.TempDir()
	nt := filepath.Join(dir, "seed.nt")
	if err := os.WriteFile(nt, []byte(apiTestData), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := repro.OpenDataset(nt,
		repro.WithDataDir(filepath.Join(dir, "data")), repro.WithShards(2))
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	defer ds.Close()
	if ds.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", ds.Shards())
	}
	eng, err := repro.NewEngineByName(ds, "emptyheaded")
	if err != nil {
		t.Fatalf("NewEngineByName: %v", err)
	}
	rows, err := repro.Query(eng, ds,
		`SELECT ?x ?y WHERE { ?x <http://ex/p> ?y }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(rows.Records) != 2 {
		t.Fatalf("sharded durable query returned %d rows, want 2", len(rows.Records))
	}
}

func TestOpenDatasetBadFsync(t *testing.T) {
	_, err := repro.OpenDataset("", repro.WithDataDir(t.TempDir()), repro.WithFsync("sometimes"))
	if err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("err = %v, want fsync policy error", err)
	}
}
