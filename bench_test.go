// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// BenchmarkTableI and BenchmarkTableII correspond to the paper's two
// tables (use cmd/benchtables for the paper-formatted output with the
// seven-run protocol); the remaining benchmarks cover Figure 1's data
// representation and the design-choice ablations.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/rdf"
)

// benchScale is the LUBM scale used by the Go benchmarks. cmd/benchtables
// defaults to a larger scale; keep this small so `go test -bench=.` stays
// minutes, not hours.
const benchScale = 1

var (
	dsOnce sync.Once
	ds     *repro.Dataset
)

func dataset(b *testing.B) *repro.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		ds = repro.GenerateLUBM(benchScale, 0)
	})
	return ds
}

func run(b *testing.B, e repro.Engine, q *repro.BGP) {
	b.Helper()
	// Warm: builds tries/indexes and the plan cache, mirroring the
	// paper's exclusion of load and compile time.
	if _, err := repro.Execute(e, q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Execute(e, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI regenerates Table I: each optimization disabled in turn
// on the paper's selected queries (1, 2, 4, 7, 8, 14).
func BenchmarkTableI(b *testing.B) {
	d := dataset(b)
	configs := []struct {
		name string
		opts repro.Options
	}{
		{"allopts", repro.AllOptimizations},
		{"nolayout", repro.Options{Layout: false, AttributeReorder: true, GHDPushdown: true, Pipelining: true}},
		{"noattribute", repro.Options{Layout: true, AttributeReorder: false, GHDPushdown: true, Pipelining: true}},
		{"noghd", repro.Options{Layout: true, AttributeReorder: true, GHDPushdown: false, Pipelining: true}},
		{"nopipelining", repro.Options{Layout: true, AttributeReorder: true, GHDPushdown: true, Pipelining: false}},
	}
	for _, qn := range []int{1, 2, 4, 7, 8, 14} {
		q := repro.MustParse(repro.LUBMQuery(qn, benchScale))
		for _, cfg := range configs {
			e := repro.NewEmptyHeaded(d, cfg.opts)
			b.Run(fmt.Sprintf("q%d/%s", qn, cfg.name), func(b *testing.B) {
				run(b, e, q)
			})
		}
	}
}

// BenchmarkTableII regenerates Table II: all five engines on the full
// LUBM query set.
func BenchmarkTableII(b *testing.B) {
	d := dataset(b)
	engines := repro.Engines(d)
	for _, qn := range repro.LUBMQueryNumbers {
		q := repro.MustParse(repro.LUBMQuery(qn, benchScale))
		for _, e := range engines {
			b.Run(fmt.Sprintf("q%d/%s", qn, e.Name()), func(b *testing.B) {
				run(b, e, q)
			})
		}
	}
}

// BenchmarkFigure1DictionaryAndTrie covers Figure 1's transformation
// pipeline: raw triples -> dictionary encoding -> vertically partitioned
// tables -> tries (measured as a full dataset load).
func BenchmarkFigure1DictionaryAndTrie(b *testing.B) {
	triples := make([]repro.Triple, 0, 1<<16)
	for i := 0; i < 1<<14; i++ {
		triples = append(triples, repro.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex/dept%d", i%512)),
			P: rdf.NewIRI("http://ex/subOrganizationOf"),
			O: rdf.NewIRI(fmt.Sprintf("http://ex/univ%d", i%64)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := repro.LoadTriples(triples)
		if d.NumTriples() == 0 {
			b.Fatal("no triples")
		}
	}
}

// BenchmarkAblationAttrOrder isolates the §III-B1 effect on the Q14-shaped
// scan: selection-first versus natural attribute order.
func BenchmarkAblationAttrOrder(b *testing.B) {
	d := dataset(b)
	q := repro.MustParse(repro.LUBMQuery(14, benchScale))
	for _, cfg := range []struct {
		name    string
		reorder bool
	}{{"selection-first", true}, {"natural", false}} {
		e := repro.NewEmptyHeaded(d, repro.Options{Layout: true, AttributeReorder: cfg.reorder})
		b.Run(cfg.name, func(b *testing.B) { run(b, e, q) })
	}
}

// BenchmarkAblationGHD isolates the §III-B2 effect on Q4: star (baseline)
// versus chain (selections pushed down across nodes).
func BenchmarkAblationGHD(b *testing.B) {
	d := dataset(b)
	q := repro.MustParse(repro.LUBMQuery(4, benchScale))
	for _, cfg := range []struct {
		name     string
		pushdown bool
	}{{"chain", true}, {"star", false}} {
		e := repro.NewEmptyHeaded(d, repro.Options{Layout: true, AttributeReorder: true, GHDPushdown: cfg.pushdown})
		b.Run(cfg.name, func(b *testing.B) { run(b, e, q) })
	}
}

// BenchmarkAblationPipelining isolates §III-C on Q8 with GHD pushdown
// disabled, which is the configuration where the root-child pair
// materializes a large intermediate unless pipelined (see EXPERIMENTS.md
// for why the fully optimized plan subsumes this effect).
func BenchmarkAblationPipelining(b *testing.B) {
	d := dataset(b)
	q := repro.MustParse(repro.LUBMQuery(8, benchScale))
	for _, cfg := range []struct {
		name     string
		pipeline bool
	}{{"pipelined", true}, {"materialized", false}} {
		e := repro.NewEmptyHeaded(d, repro.Options{Layout: true, AttributeReorder: true, Pipelining: cfg.pipeline})
		b.Run(cfg.name, func(b *testing.B) { run(b, e, q) })
	}
}

// BenchmarkTriangleScaling demonstrates the asymptotic separation the
// paper's introduction claims: worst-case optimal triangle listing versus
// a pairwise plan, on hub-skewed graphs of growing size.
func BenchmarkTriangleScaling(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		var triples []repro.Triple
		iri := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://g/n%d", i)) }
		knows := rdf.NewIRI("http://g/knows")
		hubs := 8
		for h := 0; h < hubs; h++ {
			for j := 0; j < n; j++ {
				if j != h {
					triples = append(triples, repro.Triple{S: iri(h), P: knows, O: iri(j)})
				}
			}
		}
		for s := hubs; s < n; s++ {
			triples = append(triples, repro.Triple{S: iri(s), P: knows, O: iri(hubs + (s-hubs+1)%(n-hubs))})
		}
		d := repro.LoadTriples(triples)
		q := repro.MustParse(`SELECT ?a ?b ?c WHERE {
  ?a <http://g/knows> ?b . ?b <http://g/knows> ?c . ?c <http://g/knows> ?a . }`)
		for _, mk := range []struct {
			name string
			e    repro.Engine
		}{
			{"wcoj", repro.NewEmptyHeaded(d, repro.AllOptimizations)},
			{"pairwise", repro.NewRDF3X(d)},
		} {
			b.Run(fmt.Sprintf("n%d/%s", n, mk.name), func(b *testing.B) {
				run(b, mk.e, q)
			})
		}
	}
}
