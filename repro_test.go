package repro_test

import (
	"sort"
	"strings"
	"testing"

	"repro"
)

const apiTestData = `
<http://ex/a> <http://ex/p> <http://ex/b> .
<http://ex/b> <http://ex/p> <http://ex/c> .
<http://ex/a> <http://ex/name> "A" .
`

func TestLoadNTriplesAndQuery(t *testing.T) {
	ds, err := repro.LoadNTriples(strings.NewReader(apiTestData))
	if err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	if ds.NumTriples() != 3 {
		t.Fatalf("NumTriples = %d", ds.NumTriples())
	}
	if ds.NumTerms() == 0 {
		t.Fatalf("NumTerms = 0")
	}
	eh := repro.NewEmptyHeaded(ds, repro.AllOptimizations)
	rows, err := repro.Query(eh, ds, `SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(rows.Records) != 2 || len(rows.Vars) != 2 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestLoadNTriplesError(t *testing.T) {
	if _, err := repro.LoadNTriples(strings.NewReader("garbage line\n")); err == nil {
		t.Errorf("bad N-Triples accepted")
	}
}

func TestQueryParseError(t *testing.T) {
	ds := repro.LoadTriples(nil)
	eh := repro.NewEmptyHeaded(ds, repro.AllOptimizations)
	if _, err := repro.Query(eh, ds, "not sparql"); err == nil {
		t.Errorf("bad SPARQL accepted")
	}
}

func TestAllEngineConstructors(t *testing.T) {
	ds, err := repro.LoadNTriples(strings.NewReader(apiTestData))
	if err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	engines := []repro.Engine{
		repro.NewEmptyHeaded(ds, repro.NoOptimizations),
		repro.NewLogicBlox(ds),
		repro.NewMonetDB(ds),
		repro.NewRDF3X(ds),
		repro.NewTripleBit(ds),
		repro.NewNaive(ds),
	}
	seen := map[string]bool{}
	for _, e := range engines {
		if e.Name() == "" || seen[e.Name()] {
			t.Errorf("engine name %q empty or duplicated", e.Name())
		}
		seen[e.Name()] = true
		rows, err := repro.Query(e, ds, `SELECT ?x WHERE { ?x <http://ex/p> <http://ex/b> . }`)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(rows.Records) != 1 || rows.Records[0][0].Value != "http://ex/a" {
			t.Errorf("%s: rows = %v", e.Name(), rows.Records)
		}
	}
}

func TestEnginesListMatchesTableII(t *testing.T) {
	ds := repro.GenerateLUBM(1, 0)
	engines := repro.Engines(ds)
	if len(engines) != 5 {
		t.Fatalf("Engines() = %d entries", len(engines))
	}
	want := []string{"emptyheaded", "triplebit", "rdf3x", "monetdb", "logicblox"}
	for i, e := range engines {
		if e.Name() != want[i] {
			t.Errorf("engine %d = %s, want %s", i, e.Name(), want[i])
		}
	}
}

func TestGenerateLUBMAndLUBMQueries(t *testing.T) {
	ds := repro.GenerateLUBM(1, 7)
	if ds.NumTriples() < 10000 {
		t.Fatalf("LUBM(1) only %d triples", ds.NumTriples())
	}
	if len(repro.LUBMQueryNumbers) != 12 {
		t.Errorf("LUBMQueryNumbers = %v", repro.LUBMQueryNumbers)
	}
	for _, n := range repro.LUBMQueryNumbers {
		if _, err := repro.Parse(repro.LUBMQuery(n, 1)); err != nil {
			t.Errorf("LUBM query %d does not parse: %v", n, err)
		}
	}
	if repro.MustParse(repro.LUBMQuery(2, 1)) == nil {
		t.Errorf("MustParse returned nil")
	}
}

// canon renders decoded rows sorted, for order-insensitive comparison.
func canon(r *repro.Rows) string {
	lines := make([]string, len(r.Records))
	for i, rec := range r.Records {
		parts := make([]string, len(rec))
		for j, term := range rec {
			parts[j] = term.String()
		}
		lines[i] = strings.Join(parts, "\t")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestPartitionedDatasetMatchesUnsharded(t *testing.T) {
	ds, err := repro.LoadNTriples(strings.NewReader(apiTestData))
	if err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	if ds.Shards() != 1 {
		t.Fatalf("fresh dataset Shards() = %d, want 1", ds.Shards())
	}
	const q = `SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z . }`
	plain, err := repro.NewEngineByName(ds, "naive")
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.Query(plain, ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Partition(3); err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if ds.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", ds.Shards())
	}
	sharded, err := repro.NewEngineByName(ds, "naive")
	if err != nil {
		t.Fatal(err)
	}
	got, err := repro.Query(sharded, ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if canon(got) != canon(want) {
		t.Fatalf("sharded rows differ:\n%s\nwant:\n%s", canon(got), canon(want))
	}
	// Partition(1) reverts to unsharded construction.
	if err := ds.Partition(1); err != nil {
		t.Fatal(err)
	}
	if ds.Shards() != 1 {
		t.Fatalf("Shards() after Partition(1) = %d, want 1", ds.Shards())
	}
}

func TestQueryHonoursLimitOffset(t *testing.T) {
	ds, err := repro.LoadNTriples(strings.NewReader(apiTestData))
	if err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	eng := repro.NewNaive(ds)
	rows, err := repro.Query(eng, ds, `SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Records) != 1 {
		t.Fatalf("LIMIT 1: %d rows, want 1", len(rows.Records))
	}
	rows, err = repro.Query(eng, ds, `SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . } OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Records) != 1 {
		t.Fatalf("OFFSET 1: %d rows, want 1", len(rows.Records))
	}
	rows, err = repro.Query(eng, ds, `SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . } LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Records) != 0 || len(rows.Vars) != 2 {
		t.Fatalf("LIMIT 0: %d rows / vars %v, want 0 rows with both vars", len(rows.Records), rows.Vars)
	}
}

func TestDatasetLiveUpdates(t *testing.T) {
	ds, err := repro.LoadNTriples(strings.NewReader(apiTestData))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngineByName(ds, "emptyheaded")
	if err != nil {
		t.Fatal(err)
	}
	const chain = `SELECT ?x ?y ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z }`
	rows, err := repro.Query(eng, ds, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Records) != 1 {
		t.Fatalf("base chain rows = %d, want 1 (a→b→c)", len(rows.Records))
	}

	// Extend the chain live: the same engine sees the new edge.
	n, err := ds.ApplyPatch(strings.NewReader("+<http://ex/c> <http://ex/p> <http://ex/d> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n.Inserted != 1 {
		t.Fatalf("ApplyPatch: %+v", n)
	}
	if ds.NumTriples() != 4 {
		t.Fatalf("NumTriples after insert = %d, want 4", ds.NumTriples())
	}
	rows, err = repro.Query(eng, ds, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Records) != 2 {
		t.Fatalf("chain rows after insert = %d, want 2 (a→b→c, b→c→d)", len(rows.Records))
	}

	// Compact: epoch bumps, same results from the same engine handle.
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if ds.Epoch() != 1 {
		t.Fatalf("Epoch after compact = %d, want 1", ds.Epoch())
	}
	rows, err = repro.Query(eng, ds, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Records) != 2 {
		t.Fatalf("chain rows after compact = %d, want 2", len(rows.Records))
	}

	// Delete a base edge; chains through it disappear.
	if _, err := ds.ApplyPatch(strings.NewReader("-<http://ex/a> <http://ex/p> <http://ex/b> .\n")); err != nil {
		t.Fatal(err)
	}
	rows, err = repro.Query(eng, ds, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Records) != 1 {
		t.Fatalf("chain rows after delete = %d, want 1 (b→c→d)", len(rows.Records))
	}
}
