package repro_test

import (
	"strings"
	"testing"

	"repro"
)

const apiTestData = `
<http://ex/a> <http://ex/p> <http://ex/b> .
<http://ex/b> <http://ex/p> <http://ex/c> .
<http://ex/a> <http://ex/name> "A" .
`

func TestLoadNTriplesAndQuery(t *testing.T) {
	ds, err := repro.LoadNTriples(strings.NewReader(apiTestData))
	if err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	if ds.NumTriples() != 3 {
		t.Fatalf("NumTriples = %d", ds.NumTriples())
	}
	if ds.NumTerms() == 0 {
		t.Fatalf("NumTerms = 0")
	}
	eh := repro.NewEmptyHeaded(ds, repro.AllOptimizations)
	rows, err := repro.Query(eh, ds, `SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . }`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(rows.Records) != 2 || len(rows.Vars) != 2 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestLoadNTriplesError(t *testing.T) {
	if _, err := repro.LoadNTriples(strings.NewReader("garbage line\n")); err == nil {
		t.Errorf("bad N-Triples accepted")
	}
}

func TestQueryParseError(t *testing.T) {
	ds := repro.LoadTriples(nil)
	eh := repro.NewEmptyHeaded(ds, repro.AllOptimizations)
	if _, err := repro.Query(eh, ds, "not sparql"); err == nil {
		t.Errorf("bad SPARQL accepted")
	}
}

func TestAllEngineConstructors(t *testing.T) {
	ds, err := repro.LoadNTriples(strings.NewReader(apiTestData))
	if err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	engines := []repro.Engine{
		repro.NewEmptyHeaded(ds, repro.NoOptimizations),
		repro.NewLogicBlox(ds),
		repro.NewMonetDB(ds),
		repro.NewRDF3X(ds),
		repro.NewTripleBit(ds),
		repro.NewNaive(ds),
	}
	seen := map[string]bool{}
	for _, e := range engines {
		if e.Name() == "" || seen[e.Name()] {
			t.Errorf("engine name %q empty or duplicated", e.Name())
		}
		seen[e.Name()] = true
		rows, err := repro.Query(e, ds, `SELECT ?x WHERE { ?x <http://ex/p> <http://ex/b> . }`)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(rows.Records) != 1 || rows.Records[0][0].Value != "http://ex/a" {
			t.Errorf("%s: rows = %v", e.Name(), rows.Records)
		}
	}
}

func TestEnginesListMatchesTableII(t *testing.T) {
	ds := repro.GenerateLUBM(1, 0)
	engines := repro.Engines(ds)
	if len(engines) != 5 {
		t.Fatalf("Engines() = %d entries", len(engines))
	}
	want := []string{"emptyheaded", "triplebit", "rdf3x", "monetdb", "logicblox"}
	for i, e := range engines {
		if e.Name() != want[i] {
			t.Errorf("engine %d = %s, want %s", i, e.Name(), want[i])
		}
	}
}

func TestGenerateLUBMAndLUBMQueries(t *testing.T) {
	ds := repro.GenerateLUBM(1, 7)
	if ds.NumTriples() < 10000 {
		t.Fatalf("LUBM(1) only %d triples", ds.NumTriples())
	}
	if len(repro.LUBMQueryNumbers) != 12 {
		t.Errorf("LUBMQueryNumbers = %v", repro.LUBMQueryNumbers)
	}
	for _, n := range repro.LUBMQueryNumbers {
		if _, err := repro.Parse(repro.LUBMQuery(n, 1)); err != nil {
			t.Errorf("LUBM query %d does not parse: %v", n, err)
		}
	}
	if repro.MustParse(repro.LUBMQuery(2, 1)) == nil {
		t.Errorf("MustParse returned nil")
	}
}
