// Quickstart: load a small RDF graph, run a SPARQL basic graph pattern on
// the worst-case optimal EmptyHeaded-style engine, and print decoded rows.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const data = `
<http://ex/alice>  <http://ex/knows>  <http://ex/bob> .
<http://ex/bob>    <http://ex/knows>  <http://ex/carol> .
<http://ex/carol>  <http://ex/knows>  <http://ex/alice> .
<http://ex/alice>  <http://ex/name>   "Alice" .
<http://ex/bob>    <http://ex/name>   "Bob" .
<http://ex/carol>  <http://ex/name>   "Carol" .
<http://ex/dave>   <http://ex/knows>  <http://ex/alice> .
`

func main() {
	ds, err := repro.LoadNTriples(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d triples, %d distinct terms\n\n", ds.NumTriples(), ds.NumTerms())

	eh := repro.NewEmptyHeaded(ds, repro.AllOptimizations)

	// A cyclic query: who forms a friendship triangle?
	rows, err := repro.Query(eh, ds, `
SELECT ?a ?b ?c WHERE {
  ?a <http://ex/knows> ?b .
  ?b <http://ex/knows> ?c .
  ?c <http://ex/knows> ?a .
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("friendship triangles:")
	for _, r := range rows.Records {
		fmt.Printf("  %s -> %s -> %s\n", r[0].Value, r[1].Value, r[2].Value)
	}

	// An acyclic query with a selection.
	rows, err = repro.Query(eh, ds, `
SELECT ?n WHERE {
  ?p <http://ex/knows> <http://ex/alice> .
  ?p <http://ex/name> ?n .
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npeople who know alice:")
	for _, r := range rows.Records {
		fmt.Printf("  %s\n", r[0].Value)
	}
}
