// LUBM end-to-end: generate the benchmark dataset at a small scale, run
// every benchmark query on all five engines, and print a miniature version
// of the paper's Table II (runtime relative to the per-query winner).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const scale = 1
	start := time.Now()
	ds := repro.GenerateLUBM(scale, 0)
	fmt.Printf("LUBM(%d): %d triples generated and loaded in %v\n\n",
		scale, ds.NumTriples(), time.Since(start).Round(time.Millisecond))

	engines := repro.Engines(ds)

	fmt.Printf("%-6s", "query")
	for _, e := range engines {
		fmt.Printf(" %12s", e.Name())
	}
	fmt.Printf(" %8s\n", "rows")

	for _, qn := range repro.LUBMQueryNumbers {
		q, err := repro.Parse(repro.LUBMQuery(qn, scale))
		if err != nil {
			log.Fatal(err)
		}
		times := make([]time.Duration, len(engines))
		rows := 0
		for i, e := range engines {
			// Warm once (index/trie construction), then time.
			if _, err := repro.Execute(e, q); err != nil {
				log.Fatal(err)
			}
			t0 := time.Now()
			res, err := repro.Execute(e, q)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = time.Since(t0)
			rows = res.Len()
		}
		best := times[0]
		for _, t := range times[1:] {
			if t < best {
				best = t
			}
		}
		fmt.Printf("Q%-5d", qn)
		for _, t := range times {
			fmt.Printf(" %11.2fx", float64(t)/float64(best))
		}
		fmt.Printf(" %8d\n", rows)
	}
	fmt.Println("\n1.00x marks the fastest engine per query (compare with Table II).")
}
