// Optimizations: a walk through §III of the paper. Runs selected LUBM
// queries with each classic optimization disabled in turn and reports the
// slowdown relative to the fully optimized engine — a miniature Table I.
//
//   - +Layout     (§III-A): bitsets for dense sets make equality probes O(1);
//   - +Attribute  (§III-B1): selections move to the front of the trie order,
//     turning full-relation walks into index descents;
//   - +GHD        (§III-B2): selective relations sink to the bottom of the
//     plan, so big relations are filtered before materialization;
//   - +Pipelining (§III-C): a pipelineable root-child pair streams instead
//     of materializing.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const scale = 1
	ds := repro.GenerateLUBM(scale, 0)
	fmt.Printf("LUBM(%d): %d triples\n\n", scale, ds.NumTriples())

	type ablation struct {
		name string
		opts repro.Options
	}
	all := repro.AllOptimizations
	ablations := []ablation{
		{"-Layout", repro.Options{Layout: false, AttributeReorder: true, GHDPushdown: true, Pipelining: true}},
		{"-Attribute", repro.Options{Layout: true, AttributeReorder: false, GHDPushdown: true, Pipelining: true}},
		{"-GHD", repro.Options{Layout: true, AttributeReorder: true, GHDPushdown: false, Pipelining: true}},
		{"-Pipelining", repro.Options{Layout: true, AttributeReorder: true, GHDPushdown: true, Pipelining: false}},
	}

	measure := func(opts repro.Options, q *repro.BGP) time.Duration {
		e := repro.NewEmptyHeaded(ds, opts)
		if _, err := repro.Execute(e, q); err != nil { // warm tries + plan cache
			log.Fatal(err)
		}
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, err := repro.Execute(e, q); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	fmt.Printf("%-6s %12s", "query", "optimized")
	for _, ab := range ablations {
		fmt.Printf(" %12s", ab.name)
	}
	fmt.Println()
	for _, qn := range []int{1, 2, 4, 7, 8, 14} {
		q, err := repro.Parse(repro.LUBMQuery(qn, scale))
		if err != nil {
			log.Fatal(err)
		}
		base := measure(all, q)
		fmt.Printf("Q%-5d %12v", qn, base.Round(time.Microsecond))
		for _, ab := range ablations {
			t := measure(ab.opts, q)
			fmt.Printf(" %11.2fx", float64(t)/float64(base))
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are slowdowns when the named optimization is disabled")
	fmt.Println("(compare with Table I of the paper).")
}
