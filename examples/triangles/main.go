// Triangles: the paper's motivating case study (§I). On cyclic queries any
// pairwise join plan is asymptotically suboptimal — Ω(N²) worst case versus
// O(N^{3/2}) for the generic worst-case optimal join. This example builds a
// skewed social graph (a few hubs, many spokes — the hard case for pairwise
// plans), lists its triangles with both engine families, and reports the
// wall-clock gap.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/rdf"
)

const knows = "http://social/knows"

// buildGraph produces a graph with heavy-hub skew: hubs know everyone,
// spokes know a few others. The pairwise intermediate (two-paths through
// hubs) is quadratic in the hub degree; the triangle output is not.
func buildGraph(hubs, spokes int) []repro.Triple {
	iri := func(i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("http://social/p%d", i))
	}
	var out []repro.Triple
	edge := func(a, b int) {
		out = append(out, repro.Triple{S: iri(a), P: rdf.NewIRI(knows), O: iri(b)})
	}
	n := hubs + spokes
	for h := 0; h < hubs; h++ {
		for j := 0; j < n; j++ {
			if j != h {
				edge(h, j)
			}
		}
	}
	// A sparse ring among the spokes, so some triangles exist beyond hubs.
	for s := hubs; s < n; s++ {
		edge(s, hubs+(s-hubs+1)%spokes)
	}
	return out
}

func main() {
	triples := buildGraph(12, 3000)
	ds := repro.LoadTriples(triples)
	fmt.Printf("social graph: %d triples\n\n", ds.NumTriples())

	q := `SELECT ?a ?b ?c WHERE {
  ?a <` + knows + `> ?b .
  ?b <` + knows + `> ?c .
  ?c <` + knows + `> ?a .
}`

	engines := []repro.Engine{
		repro.NewEmptyHeaded(ds, repro.AllOptimizations), // worst-case optimal
		repro.NewLogicBlox(ds),                           // worst-case optimal, unoptimized
		repro.NewRDF3X(ds),                               // pairwise + indexes
		repro.NewMonetDB(ds),                             // pairwise + scans
	}
	parsed, err := repro.Parse(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %10s\n", "engine", "time", "triangles")
	for _, e := range engines {
		start := time.Now()
		res, err := repro.Execute(e, parsed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12v %10d\n", e.Name(), time.Since(start).Round(time.Microsecond), res.Len())
	}
	fmt.Println("\nworst-case optimal engines avoid materializing the quadratic")
	fmt.Println("hub-to-hub two-path intermediate that pairwise plans must build.")
}
